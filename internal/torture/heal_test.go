package torture

import (
	"fmt"
	"testing"
)

// healConfig is the standard self-healing schedule shape: the usual
// torture workload over 8 providers, a store-level kill mid-run, and a
// 400-virtual-tick healing budget per kill.
func healConfig(seed int64, replicas int) HealConfig {
	return HealConfig{
		CrashConfig: CrashConfig{
			Config:    tortureConfig(seed),
			Replicas:  replicas,
			Providers: 8,
		},
	}
}

// TestHealSchedule is the self-healing torture suite: a provider's
// chunk store dies mid-workload and NOTHING administrative happens —
// no SetDown, no Repair call. The error-driven monitor must detect the
// loss, the scrubber and read-repair queue must restore full
// replication within the virtual-tick budget, every published snapshot
// must scrub clean, a second kill must heal the same way, and the
// first victim must rejoin service once its store recovers.
func TestHealSchedule(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunHeal(healConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedCalls != 0 {
					t.Fatalf("seed %d: %d writes failed at R=%d", seed, rep.FailedCalls, r)
				}
				if !rep.Detected || !rep.Revived {
					t.Fatalf("seed %d: autonomy broken: %+v", seed, rep)
				}
				if rep.Scrubbed == 0 || rep.PostSecond < rep.Scrubbed {
					t.Fatalf("seed %d: scrub coverage shrank: %+v", seed, rep)
				}
				if rep.Enqueued == 0 {
					t.Fatalf("seed %d: kill after %d calls enqueued no repairs — schedule lost its teeth (victim %d)",
						seed, rep.Plan.AfterCalls, rep.Plan.Victim)
				}
				t.Logf("seed %d R=%d: healed in %d + %d ticks, %d enqueued (%d dropped by backpressure)",
					seed, r, rep.TicksFirst, rep.TicksSecond, rep.Enqueued, rep.Dropped)
			}
		})
	}
}

// TestHealPlanDeterminism: equal seeds derive equal schedules, the
// second victim always differs from the first, and schedules vary with
// the seed — the replayability contract.
func TestHealPlanDeterminism(t *testing.T) {
	a := healConfig(5, 2).Plan()
	b := healConfig(5, 2).Plan()
	if a != b {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	seen := map[HealPlan]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		p := healConfig(seed, 2).Plan()
		if p.Second == p.Victim {
			t.Fatalf("seed %d: second victim equals first: %+v", seed, p)
		}
		total := healConfig(seed, 2).Writers * healConfig(seed, 2).CallsPerWriter
		if p.AfterCalls < total/4 || p.AfterCalls > 3*total/4 {
			t.Fatalf("seed %d: kill point %d outside the middle half of %d calls", seed, p.AfterCalls, total)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("schedules do not vary with the seed")
	}
	// The heal stream must be independent of the crash stream: same
	// seed, different schedule families.
	if hp, cp := healConfig(5, 2).Plan(), crashConfig(5, 2).Plan(); hp.Victim == cp.Victim && hp.AfterCalls == cp.AfterCalls {
		t.Fatalf("heal plan %+v collides with crash plan %+v — streams not independent", hp, cp)
	}
}

// TestHealRejectsUnreplicated: self-healing presumes a surviving copy;
// R=1 must be refused rather than silently losing data.
func TestHealRejectsUnreplicated(t *testing.T) {
	if _, err := RunHeal(healConfig(1, 1)); err == nil {
		t.Fatal("RunHeal accepted R=1")
	}
}
