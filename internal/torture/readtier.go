package torture

import (
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
	"repro/internal/workload"
)

// ReadTierConfig parameterizes one read-tier torture run: the
// correlated-loss schedule (overlap-heavy writes, whole-domain
// store-level kill, autonomous healing) with the full hot-path read
// tier switched ON — zone-local replica selection from zone0 and the
// shared bounded read-through cache — while skewed hot/cold readers
// hammer the file before, during and after the kill. The schedule
// exists to prove the tier is read-only in its effects: placements rot
// under the kill and the repairs, the cache holds data and hints from
// before both, and not one read may fail for it.
type ReadTierConfig struct {
	DomainConfig
	// Readers is the number of concurrent reader goroutines (default 4).
	Readers int
	// ReadsPerReader is the picks each reader replays per read phase
	// (default 200).
	ReadsPerReader int
}

// ReadTierReport summarizes one read-tier run.
type ReadTierReport struct {
	Plan        DomainPlan
	FailedCalls int   // writes that failed (must be 0)
	Reads       int64 // reads issued across both phases (all must succeed)
	CacheHits   int64 // data reads served from memory
	Invalidated int64 // cache entries dropped by placement changes
	Detected    int   // victims the monitor flagged down
	Ticks       int   // healer ticks to full re-replication and spread
	Scrubbed    int   // versions read back in full after the heal
}

// RunReadTier executes the read-tier schedule. The contract it checks,
// on top of RunDomain's write-side guarantees:
//
//   - Zero failed reads, ever: while readers race the writers and the
//     whole-domain kill, and again in a full post-kill pass when the
//     cache is primed with pre-kill data and hints and every placement
//     referencing the dead domain is stale. A stale cached hint may
//     cost a failover, never a failure.
//   - The cache actually serves the hot set (hits > 0) and placement
//     changes actually flow through it (invalidations > 0 once the
//     healer re-replicates out of the dead domain).
//   - The outcome stays serializable read THROUGH the cache, healing
//     converges, every victim is detected, and every snapshot scrubs
//     clean — durability untouched by the read tier.
func RunReadTier(cfg ReadTierConfig) (ReadTierReport, error) {
	if cfg.Replicas < 2 {
		return ReadTierReport{}, errors.New("torture: RunReadTier needs R >= 2")
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.Domains <= 0 {
		cfg.Domains = 4
	}
	if cfg.Domains <= cfg.Replicas {
		return ReadTierReport{}, fmt.Errorf("torture: RunReadTier needs Domains > Replicas (got %d <= %d)",
			cfg.Domains, cfg.Replicas)
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 400
	}
	if cfg.Readers <= 0 {
		cfg.Readers = 4
	}
	if cfg.ReadsPerReader <= 0 {
		cfg.ReadsPerReader = 200
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return ReadTierReport{}, err
	}
	plan := cfg.DomainConfig.Plan()
	report := ReadTierReport{Plan: plan}

	env := domainEnv(cfg.DomainConfig)
	env.ReadCache = true
	env.LocalDomain = "zone0" // the victim domain may be zone0 itself: locality must degrade, not fail
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	// Virtual clock: one healer tick = one virtual second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })

	// Readers replay a seeded hot/cold pick sequence as whole-chunk
	// reads clipped to the window — the skew that makes the cache
	// earn its hits.
	chunks := int(cfg.Window / env.ChunkSize)
	if chunks < 1 {
		chunks = 1
	}
	pattern := workload.HotColdSpec{Chunks: chunks, HotFraction: 0.25, HotProb: 0.9}
	var reads atomic.Int64
	readPhase := func(phase int) error {
		errs := make([]error, cfg.Readers)
		var wg sync.WaitGroup
		for r := 0; r < cfg.Readers; r++ {
			wg.Add(1)
			go func(r int) {
				defer wg.Done()
				pick := pattern.Picker(cfg.Seed ^ int64(phase*1000+r))
				for i := 0; i < cfg.ReadsPerReader; i++ {
					off := int64(pick()) * env.ChunkSize
					length := env.ChunkSize
					if off+length > cfg.Window {
						length = cfg.Window - off
					}
					_, err := d.ReadList(extent.List{{Offset: off, Length: length}}, true)
					reads.Add(1)
					if err != nil {
						errs[r] = fmt.Errorf("reader %d read %d: %w", r, i, err)
						return
					}
				}
			}(r)
		}
		wg.Wait()
		return errors.Join(errs...)
	}

	// Phase 1: writers, the whole-domain kill, and readers all racing.
	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			for _, id := range plan.Victims {
				svc.Faults[id].SetDown(true)
			}
		})
	}
	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var readErr error
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		readErr = readPhase(1)
	}()
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	report.FailedCalls = len(failures)
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): writes failed under the read tier: %w",
			cfg.Seed, errors.Join(failures...))
	}
	if readErr != nil {
		return report, fmt.Errorf("torture(seed=%d): reads failed racing the domain kill: %w", cfg.Seed, readErr)
	}

	// Phase 2: the domain is dead, nothing is healed yet, and the cache
	// is primed with pre-kill data and hints. Every read must still
	// succeed — stale cache state may cost failovers, never failures.
	if err := readPhase(2); err != nil {
		return report, fmt.Errorf("torture(seed=%d): reads failed on the unhealed degraded cluster: %w", cfg.Seed, err)
	}

	// Serializability read THROUGH the cache: the verifier's reads take
	// the same cached path the torture readers warmed up.
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		return report, fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}

	// Autonomous healing converges with the cache bolted on; every
	// re-replication is a placement change the cache must absorb.
	report.Ticks = -1
	for t := 1; t <= cfg.MaxTicks; t++ {
		vsec.Add(1)
		svc.Healer.Tick()
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 && len(svc.Router.SpreadAudit()) == 0 {
			report.Ticks = t
			break
		}
	}
	if report.Ticks < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated / %d spread-violated chunks remain after %d ticks with the cache on: %+v",
			cfg.Seed, svc.Router.UnderReplicated(), len(svc.Router.SpreadAudit()), cfg.MaxTicks, svc.Healer.Stats())
	}
	for _, id := range plan.Victims {
		if svc.Health.State(id) == provider.Down {
			report.Detected++
		}
	}
	if report.Detected != len(plan.Victims) {
		return report, fmt.Errorf("torture(seed=%d): only %d of %d domain victims detected down", cfg.Seed, report.Detected, len(plan.Victims))
	}

	// Phase 3: post-heal reads — placements moved again under the
	// healer; the cache must have followed.
	if err := readPhase(3); err != nil {
		return report, fmt.Errorf("torture(seed=%d): reads failed after healing: %w", cfg.Seed, err)
	}

	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot unreadable with the read tier on: %w", cfg.Seed, err)
	}

	report.Reads = reads.Load()
	st := svc.Cache.Stats()
	report.CacheHits = st.Hits
	report.Invalidated = st.Invalidations
	if report.CacheHits == 0 {
		return report, fmt.Errorf("torture(seed=%d): the hot/cold readers never hit the cache: %+v", cfg.Seed, st)
	}
	if report.Invalidated == 0 {
		return report, fmt.Errorf("torture(seed=%d): healing re-replicated out of a dead domain yet invalidated nothing — placement changes are bypassing the cache: %+v",
			cfg.Seed, st)
	}
	return report, nil
}
