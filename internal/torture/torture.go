// Package torture is a randomized atomicity torture harness: N
// goroutine writers fire overlap-heavy random extent lists at a storage
// backend, and the final state is checked for serializability with
// internal/verify — the experimental definition of MPI atomic mode.
// Every backend that claims MPI atomicity (the versioning backend,
// batched or not, and every locking strategy of the Lustre-like
// baseline) must survive this suite; it is the safety net under which
// the version manager's group-commit pipeline was built.
//
// All randomness is derived from Config.Seed, and call generation
// happens before any goroutine starts, so a failing run is reproduced
// by its seed alone (the scheduler only picks WHICH serial order the
// backend must be equivalent to, never the calls themselves).
//
// Beyond pure atomicity, the suite also tortures durability: crash.go
// runs the same workload on replicated deployments while a
// seed-scheduled data provider dies mid-run (see CrashConfig/RunCrash),
// asserting that writes keep committing via the write quorum, the
// outcome stays serializable, and with R >= 2 every published snapshot
// survives the loss — and a repair pass restores enough redundancy to
// survive the next one.
package torture

import (
	"fmt"
	"math/rand"
	"sync"

	"repro/internal/extent"
	"repro/internal/mpiio"
	"repro/internal/verify"
)

// Config parameterizes one torture run. All calls land inside a byte
// window of the given size, which is what makes the workload
// overlap-heavy: with Writers*CallsPerWriter extent lists drawn from
// the same small window, most bytes are contested by several calls.
type Config struct {
	// Seed drives all randomness; equal seeds generate equal call sets.
	Seed int64
	// Writers is the number of concurrent writer goroutines.
	Writers int
	// CallsPerWriter is the number of atomic WriteList calls each
	// writer issues, in its own sequence. Writers*CallsPerWriter must
	// stay <= 255 (verify stamp bytes).
	CallsPerWriter int
	// Window is the size of the contested byte range.
	Window int64
	// MaxExtents bounds the extents per call (>= 1).
	MaxExtents int
	// MaxExtentLen bounds each extent's length (>= 1).
	MaxExtentLen int64
}

// Validate checks the configuration.
func (c Config) Validate() error {
	if c.Writers < 1 || c.CallsPerWriter < 1 {
		return fmt.Errorf("torture: need positive writers/calls, got %+v", c)
	}
	if c.Writers*c.CallsPerWriter > 255 {
		return fmt.Errorf("torture: %d calls exceed the 255 stamp-byte limit", c.Writers*c.CallsPerWriter)
	}
	if c.Window < 1 || c.MaxExtents < 1 || c.MaxExtentLen < 1 {
		return fmt.Errorf("torture: need positive window/extents/length, got %+v", c)
	}
	return nil
}

// Calls deterministically generates the per-writer call lists. Call IDs
// are dense in [1, Writers*CallsPerWriter], writer-major.
func (c Config) Calls() ([][]verify.Call, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	rng := rand.New(rand.NewSource(c.Seed))
	out := make([][]verify.Call, c.Writers)
	for w := 0; w < c.Writers; w++ {
		out[w] = make([]verify.Call, c.CallsPerWriter)
		for k := 0; k < c.CallsPerWriter; k++ {
			n := 1 + rng.Intn(c.MaxExtents)
			var l extent.List
			for i := 0; i < n; i++ {
				length := 1 + rng.Int63n(c.MaxExtentLen)
				if length > c.Window {
					length = c.Window
				}
				off := rng.Int63n(c.Window - length + 1)
				l = append(l, extent.Extent{Offset: off, Length: length})
			}
			// Normalize: extents within one call must not overlap each
			// other (a single MPI call's regions are disjoint); merging
			// random draws enforces that without biasing the layout.
			out[w][k] = verify.Call{ID: w*c.CallsPerWriter + k + 1, Extents: l.Normalize()}
		}
	}
	return out, nil
}

// Span returns the byte range a run touches (the whole window).
func (c Config) Span() int64 { return c.Window }

// Run drives the configured calls concurrently against the driver —
// each writer goroutine issuing its calls in sequence, all writers
// racing — then reads the final state back and checks that it is
// equivalent to some serial order of the whole calls. Any error is
// wrapped with the seed so the run can be replayed.
func Run(d mpiio.Driver, cfg Config) error {
	perWriter, err := cfg.Calls()
	if err != nil {
		return err
	}
	errs := make([]error, cfg.Writers)
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err != nil {
					errs[w] = err
					return
				}
				if err := d.WriteList(vec, true); err != nil {
					errs[w] = fmt.Errorf("call %d: %w", call.ID, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	for w, err := range errs {
		if err != nil {
			return fmt.Errorf("torture(seed=%d): writer %d: %w", cfg.Seed, w, err)
		}
	}
	var all []verify.Call
	for _, calls := range perWriter {
		all = append(all, calls...)
	}
	if err := verify.CheckCalls(reader{d}, all); err != nil {
		return fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}
	return nil
}

// reader adapts a driver to the verifier's read interface.
type reader struct{ d mpiio.Driver }

func (r reader) ReadList(q extent.List, atomic bool) ([]byte, error) {
	return r.d.ReadList(q, atomic)
}
