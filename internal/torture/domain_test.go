package torture

import (
	"fmt"
	"testing"
)

// domainConfig is the standard correlated-loss schedule shape: the
// usual torture workload over 8 providers in 4 failure domains, one
// whole domain store-killed mid-run, 400 virtual ticks to heal.
func domainConfig(seed int64, replicas int) DomainConfig {
	return DomainConfig{
		CrashConfig: CrashConfig{
			Config:    tortureConfig(seed),
			Replicas:  replicas,
			Providers: 8,
		},
		Domains: 4,
	}
}

// TestDomainKillSchedule is the correlated-loss torture suite: every
// provider of one failure domain dies at once (store level, no
// operator action) and domain-spread placement plus self-healing must
// carry every published byte through it — zero failed writes,
// serializable outcome, every victim detected, every chunk
// re-replicated into surviving domains with the distinct-domain spread
// restored, every snapshot scrubbing clean.
func TestDomainKillSchedule(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunDomain(domainConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedCalls != 0 {
					t.Fatalf("seed %d: %d writes failed at R=%d", seed, rep.FailedCalls, r)
				}
				if rep.Detected != len(rep.Plan.Victims) {
					t.Fatalf("seed %d: %d of %d victims detected", seed, rep.Detected, len(rep.Plan.Victims))
				}
				if rep.Scrubbed == 0 {
					t.Fatalf("seed %d: nothing scrubbed after heal: %+v", seed, rep)
				}
				if rep.Enqueued == 0 {
					t.Fatalf("seed %d: domain kill after %d calls enqueued no repairs — schedule lost its teeth (domain %d = %v)",
						seed, rep.Plan.AfterCalls, rep.Plan.VictimDomain, rep.Plan.Victims)
				}
				t.Logf("seed %d R=%d: domain %d (%d providers) healed in %d ticks, %d enqueued (%d spread violations, %d dropped)",
					seed, r, rep.Plan.VictimDomain, len(rep.Plan.Victims), rep.Ticks, rep.Enqueued, rep.SpreadFound, rep.Dropped)
			}
		})
	}
}

// TestDomainFlatControl witnesses the exposure the schedule exists to
// prevent: the SAME seed, workload and whole-domain kill on the flat
// pre-spread deployment loses published chunks — replication alone is
// no defense against machines that fail together.
func TestDomainFlatControl(t *testing.T) {
	for _, seed := range seeds(t) {
		rep, err := RunDomainFlat(domainConfig(seed, 2))
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.LostChunks == 0 || !rep.LossSeen {
			t.Fatalf("seed %d: control run lost nothing: %+v", seed, rep)
		}
		t.Logf("seed %d: flat placement lost %d chunks to the domain kill the spread run survived", seed, rep.LostChunks)
	}
}

// TestDomainPlanDeterminism: equal seeds derive equal schedules,
// victims exactly cover one contiguous domain block, schedules vary
// with the seed, and the stream is independent of the crash/heal
// families — the replayability contract.
func TestDomainPlanDeterminism(t *testing.T) {
	a := domainConfig(5, 2).Plan()
	b := domainConfig(5, 2).Plan()
	if a.VictimDomain != b.VictimDomain || a.AfterCalls != b.AfterCalls || len(a.Victims) != len(b.Victims) {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		p := domainConfig(seed, 2).Plan()
		if len(p.Victims) != 2 {
			t.Fatalf("seed %d: domain block %v, want 2 providers (8 providers / 4 domains)", seed, p.Victims)
		}
		if got, want := p.Victims[1], p.Victims[0]+1; got != want {
			t.Fatalf("seed %d: victims %v not a contiguous block", seed, p.Victims)
		}
		total := domainConfig(seed, 2).Writers * domainConfig(seed, 2).CallsPerWriter
		if p.AfterCalls < total/4 || p.AfterCalls > 3*total/4 {
			t.Fatalf("seed %d: kill point %d outside the middle half of %d calls", seed, p.AfterCalls, total)
		}
		seen[p.VictimDomain] = true
	}
	if len(seen) < 2 {
		t.Fatal("victim domains do not vary with the seed")
	}
	if dp, hp := domainConfig(5, 2).Plan(), healConfig(5, 2).Plan(); dp.AfterCalls == hp.AfterCalls {
		t.Fatalf("domain plan %+v collides with heal plan %+v — streams not independent", dp, hp)
	}
}

// TestDomainRejectsBadShapes: the schedule refuses configurations that
// cannot uphold its contract — unreplicated data (R=1) and a domain
// count the spread invariant cannot survive a loss under.
func TestDomainRejectsBadShapes(t *testing.T) {
	if _, err := RunDomain(domainConfig(1, 1)); err == nil {
		t.Fatal("RunDomain accepted R=1")
	}
	cfg := domainConfig(1, 2)
	cfg.Domains = 2 // losing 1 of 2 domains leaves 1 < R
	if _, err := RunDomain(cfg); err == nil {
		t.Fatal("RunDomain accepted Domains <= Replicas")
	}
}
