package torture

import (
	"errors"
	"fmt"
	"os"
	"strconv"
	"testing"
	"time"

	"repro/internal/bench"
	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/verify"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

// tortureConfig is the standard stress shape: 8 writers x 4 calls = 32
// stamped calls drawn from a 256 KiB window with extents up to 8 KiB —
// heavy multi-way overlap, unaligned boundaries, non-contiguous lists.
func tortureConfig(seed int64) Config {
	return Config{
		Seed:           seed,
		Writers:        8,
		CallsPerWriter: 4,
		Window:         256 << 10,
		MaxExtents:     5,
		MaxExtentLen:   8 << 10,
	}
}

// seeds returns the deterministic seed series; REPRO_TORTURE_SEED
// pins a single seed for replaying a failure.
func seeds(t *testing.T) []int64 {
	if s := os.Getenv("REPRO_TORTURE_SEED"); s != "" {
		v, err := strconv.ParseInt(s, 10, 64)
		if err != nil {
			t.Fatalf("REPRO_TORTURE_SEED=%q: %v", s, err)
		}
		return []int64{v}
	}
	if testing.Short() {
		return []int64{1}
	}
	return []int64{1, 2, 3, 4}
}

// backendUnderTest names one system in the cross-backend matrix.
type backendUnderTest struct {
	name  string
	build func(t *testing.T, span int64) mpiio.Driver
}

// lockSystem builds one locking baseline via the bench harness.
func lockSystem(kind bench.SystemKind) func(t *testing.T, span int64) mpiio.Driver {
	return func(t *testing.T, span int64) mpiio.Driver {
		t.Helper()
		sys, err := bench.Build(kind, cluster.Default(), span)
		if err != nil {
			t.Fatal(err)
		}
		return sys.Driver
	}
}

// versioningSystem builds the paper's backend with the given
// group-commit configuration.
func versioningSystem(cfg vmanager.BatchConfig) func(t *testing.T, span int64) mpiio.Driver {
	return func(t *testing.T, span int64) mpiio.Driver {
		t.Helper()
		env := cluster.Default()
		env.VMBatch = cfg
		svc, err := cluster.NewVersioning(env)
		if err != nil {
			t.Fatal(err)
		}
		be, err := svc.Backend(1, span)
		if err != nil {
			t.Fatal(err)
		}
		return &mpiio.VersioningDriver{Backend: be}
	}
}

func allBackends() []backendUnderTest {
	delay := 200 * time.Microsecond
	out := []backendUnderTest{
		{"versioning/batch=1", versioningSystem(vmanager.BatchConfig{})},
		{"versioning/batch=8", versioningSystem(vmanager.BatchConfig{MaxBatch: 8, MaxDelay: delay})},
		{"versioning/batch=64", versioningSystem(vmanager.BatchConfig{MaxBatch: 64, MaxDelay: delay})},
	}
	for _, kind := range []bench.SystemKind{
		bench.LockWholeFile, bench.LockBounding, bench.LockList,
		bench.LockConflictDetect, bench.LockDataSieve,
	} {
		out = append(out, backendUnderTest{kind.String(), lockSystem(kind)})
	}
	return out
}

// TestTortureAllBackends is the cross-backend atomicity torture suite:
// every system that claims MPI atomicity must produce a serializable
// final state under randomized overlap-heavy concurrent writes, for
// every seed and — on the versioning side — every group-commit size.
func TestTortureAllBackends(t *testing.T) {
	cfgSeeds := seeds(t)
	for _, sys := range allBackends() {
		t.Run(sys.name, func(t *testing.T) {
			for _, seed := range cfgSeeds {
				cfg := tortureConfig(seed)
				d := sys.build(t, cfg.Span())
				if err := Run(d, cfg); err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
			}
		})
	}
}

// TestTorturePosixBaselineFails pins the motivating inconsistency: the
// per-extent POSIX strategy has no MPI atomicity, so under the same
// torture load it must (at some seed) produce a non-serializable state.
// If this ever stops failing, the torture workload has lost its teeth.
func TestTorturePosixBaselineFails(t *testing.T) {
	if testing.Short() {
		t.Skip("needs several seeds to witness an interleaving")
	}
	for seed := int64(1); seed <= 20; seed++ {
		cfg := tortureConfig(seed)
		sys, err := bench.Build(bench.PosixNoAtomic, cluster.Default(), cfg.Span())
		if err != nil {
			t.Fatal(err)
		}
		err = Run(sys.Driver, cfg)
		if errors.Is(err, verify.ErrNotSerializable) || errors.Is(err, verify.ErrForeignData) {
			return // witnessed the violation the paper motivates with
		}
		if err != nil {
			t.Fatalf("unexpected error kind: %v", err)
		}
	}
	t.Fatal("posix-noatomic survived 20 torture seeds; workload too tame to detect atomicity violations")
}

// TestTortureGeneratorDeterminism: equal seeds must generate equal call
// sets — the property the replay workflow depends on.
func TestTortureGeneratorDeterminism(t *testing.T) {
	a, err := tortureConfig(7).Calls()
	if err != nil {
		t.Fatal(err)
	}
	b, err := tortureConfig(7).Calls()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", a) != fmt.Sprintf("%v", b) {
		t.Fatal("same seed generated different call sets")
	}
	c, err := tortureConfig(8).Calls()
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprintf("%v", a) == fmt.Sprintf("%v", c) {
		t.Fatal("different seeds generated identical call sets")
	}
}

// TestTortureValidation covers the config guard rails.
func TestTortureValidation(t *testing.T) {
	bad := []Config{
		{},
		{Writers: 1, CallsPerWriter: 1}, // no window
		{Writers: 16, CallsPerWriter: 16, Window: 1, MaxExtents: 1, MaxExtentLen: 1}, // 256 calls > 255
	}
	for i, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %d validated: %+v", i, cfg)
		}
	}
	if err := tortureConfig(1).Validate(); err != nil {
		t.Fatalf("standard config rejected: %v", err)
	}
}

// The torture harness must also compose with the bench workload specs
// (the suite doubles as a harness for new scenarios): a dense
// OverlapSpec pattern run through the harness's checker still passes on
// the versioning backend.
func TestTortureOverlapSpecPattern(t *testing.T) {
	spec := workload.OverlapSpec{Clients: 6, Regions: 8, RegionSize: 4 << 10, OverlapFraction: 0.9}
	res, err := bench.RunOverlap(bench.Versioning, cluster.Default(), spec, bench.OverlapOptions{Verify: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Verified {
		t.Fatalf("overlap-spec pattern failed verification: %v", res.VerifyErr)
	}
}
