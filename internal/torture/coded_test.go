package torture

import (
	"testing"
)

// codedConfig is the standard coded correlated-loss schedule shape:
// the usual torture workload at rs-4+2 over 12 providers in 6 failure
// domains (one fragment per domain per chunk), two whole domains
// killed, 400 virtual ticks to heal.
func codedConfig(seed int64) CodedConfig {
	return CodedConfig{
		CrashConfig: CrashConfig{
			Config:    tortureConfig(seed),
			Providers: 12,
		},
		Coding:  "rs-4+2",
		Domains: 6,
	}
}

// TestCodedDomainKillSchedule is the erasure-coded correlated-loss
// torture suite: one whole failure domain dies mid-workload (writes
// keep committing at quorum n-1), a second dies before any healing
// (every read reconstructs at the worst survivable loss, m=2
// fragments), and self-healing must then re-encode everything back to
// full degree — zero failed writes, serializable outcome, every victim
// detected, no fragment left in either dead domain, every snapshot
// scrubbing clean.
func TestCodedDomainKillSchedule(t *testing.T) {
	for _, seed := range seeds(t) {
		rep, err := RunCodedDomain(codedConfig(seed))
		if err != nil {
			t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
		}
		if rep.FailedCalls != 0 {
			t.Fatalf("seed %d: %d writes failed at rs-4+2", seed, rep.FailedCalls)
		}
		if rep.Detected != len(rep.Plan.FirstVictims)+len(rep.Plan.SecondVictims) {
			t.Fatalf("seed %d: %d victims detected of %+v", seed, rep.Detected, rep.Plan)
		}
		if rep.Scrubbed == 0 {
			t.Fatalf("seed %d: nothing scrubbed after heal: %+v", seed, rep)
		}
		if rep.Enqueued == 0 {
			t.Fatalf("seed %d: two-domain kill after %d calls enqueued no repairs — schedule lost its teeth (domains %d+%d)",
				seed, rep.Plan.AfterCalls, rep.Plan.FirstDomain, rep.Plan.SecondDomain)
		}
		t.Logf("seed %d rs-4+2: domains %d+%d (%d providers) healed in %d ticks, %d enqueued (%d spread violations, %d dropped)",
			seed, rep.Plan.FirstDomain, rep.Plan.SecondDomain,
			len(rep.Plan.FirstVictims)+len(rep.Plan.SecondVictims), rep.Ticks, rep.Enqueued, rep.SpreadFound, rep.Dropped)
	}
}

// TestCodedPlanDeterminism: equal seeds derive equal schedules, the
// two victim domains are distinct, victims exactly cover the two
// domain blocks, the kill point lands mid-workload, and the stream is
// independent of the replicated domain family.
func TestCodedPlanDeterminism(t *testing.T) {
	a := codedConfig(5).Plan()
	b := codedConfig(5).Plan()
	if a.FirstDomain != b.FirstDomain || a.SecondDomain != b.SecondDomain || a.AfterCalls != b.AfterCalls {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	seen := map[int]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		p := codedConfig(seed).Plan()
		if p.FirstDomain == p.SecondDomain {
			t.Fatalf("seed %d: both kills target domain %d", seed, p.FirstDomain)
		}
		if len(p.FirstVictims) != 2 || len(p.SecondVictims) != 2 {
			t.Fatalf("seed %d: victim blocks %v / %v, want 2 providers each (12 providers / 6 domains)",
				seed, p.FirstVictims, p.SecondVictims)
		}
		cfg := codedConfig(seed)
		total := cfg.Writers * cfg.CallsPerWriter
		if p.AfterCalls < total/4 || p.AfterCalls > 3*total/4 {
			t.Fatalf("seed %d: kill point %d outside the middle half of %d calls", seed, p.AfterCalls, total)
		}
		seen[p.FirstDomain] = true
	}
	if len(seen) < 2 {
		t.Fatal("victim domains do not vary with the seed")
	}
	if cp, dp := codedConfig(5).Plan(), domainConfig(5, 2).Plan(); cp.AfterCalls == dp.AfterCalls && cp.FirstDomain == dp.VictimDomain {
		t.Fatalf("coded plan %+v collides with domain plan %+v — streams not independent", cp, dp)
	}
}

// TestCodedDomainRejectsBadShapes: the schedule refuses configurations
// that cannot uphold its contract — a replicated config, a parity
// degree the two-domain kill would destroy, a domain count that would
// co-locate fragments, and a pool too small to repair to full degree.
func TestCodedDomainRejectsBadShapes(t *testing.T) {
	cfg := codedConfig(1)
	cfg.Replicas = 2
	if _, err := RunCodedDomain(cfg); err == nil {
		t.Fatal("RunCodedDomain accepted Replicas != 0")
	}
	cfg = codedConfig(1)
	cfg.Coding = "rs-5+1" // m=1: the second domain kill is fatal by design
	if _, err := RunCodedDomain(cfg); err == nil {
		t.Fatal("RunCodedDomain accepted m < 2")
	}
	cfg = codedConfig(1)
	cfg.Domains = 4 // < k+m: a domain would hold two fragments of one chunk
	if _, err := RunCodedDomain(cfg); err == nil {
		t.Fatal("RunCodedDomain accepted Domains < k+m")
	}
	cfg = codedConfig(1)
	cfg.Providers = 6 // two dead domains leave 4 < k+m providers
	if _, err := RunCodedDomain(cfg); err == nil {
		t.Fatal("RunCodedDomain accepted a pool too small to repair")
	}
}
