package torture

import (
	"bytes"
	"fmt"
	"math/rand"
	"strings"
	"sync"
	"sync/atomic"

	"repro/internal/blob"
	"repro/internal/cluster"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/segtree"
)

// StreamConfig parameterizes one streaming-data-plane torture run:
// concurrent writers push pipelined multi-chunk objects through the
// framed wire transport (remote.DialFramed, so chunk payloads really
// stream socket→store) while a seed-scheduled fault kills transfers
// mid-payload. This is the schedule under which the zero-copy data
// plane earns its correctness claim: a chunk whose stream dies partway
// must never become visible at any length, and with replication the
// loss of a provider must cost reads a failover, never a failure.
type StreamConfig struct {
	// Seed drives all randomness; equal seeds generate equal runs.
	Seed int64
	// Writers is the number of concurrent writer goroutines, each
	// owning one blob and one framed client connection (default 4).
	Writers int
	// ObjectsPerWriter is the pipelined whole-object writes each
	// writer issues, one version per object (default 6).
	ObjectsPerWriter int
	// ChunkSize is the stripe unit; every stored chunk is exactly this
	// long, which is what makes torn uploads detectable by size alone
	// (default 64 KiB).
	ChunkSize int64
	// ChunksPerObject sizes each object (default 8).
	ChunksPerObject int
	// Window bounds the pipelined writer's in-flight chunks (default 4).
	Window int
	// Replicas selects the run's failure mode. At R=1 the schedule
	// tears streams mid-payload (FailPutStreamAfter) and the killed
	// writes must fail cleanly without publishing. At R>=2 the victim
	// provider goes permanently down mid-workload and no write or read
	// may fail at all (default 1).
	Replicas int
	// Providers is the data-provider pool size (default 8).
	Providers int
	// Kills is how many streams the schedule tears at R=1 (default 3).
	Kills int
	// StoreURL selects the chunk backend via the factory; empty means
	// the in-memory fault pool. Must keep bytes (mem://, disk:///path)
	// — the run verifies payloads, so null:// cannot be tortured.
	StoreURL string
}

// StreamPlan is the seed-derived schedule: after AfterObjects writes
// have finished, either the first stream fault is armed on Victim
// (R=1) or Victim goes down (R>=2). Torn holds the mid-chunk byte
// thresholds, one per kill, each strictly inside a chunk so a fault
// can never land on a clean chunk boundary.
type StreamPlan struct {
	Victim       provider.ID
	AfterObjects int
	Torn         []int64
}

// Plan derives the stream-kill schedule from the seed. The first kill
// lands in the middle half of the workload so writes race it from both
// sides; at R=1 each subsequent failure re-arms the next kill.
func (c StreamConfig) Plan() StreamPlan {
	c = c.withDefaults()
	// A distinct stream from the payload generator: same seed,
	// different constant, so the schedule replays independently.
	rng := rand.New(rand.NewSource(c.Seed ^ 0x73747265616d2d31)) // "stream-1"
	total := c.Writers * c.ObjectsPerWriter
	p := StreamPlan{
		Victim:       provider.ID(rng.Intn(c.Providers)),
		AfterObjects: total/4 + rng.Intn(total/4+1),
	}
	for i := 0; i < c.Kills; i++ {
		p.Torn = append(p.Torn, 1+rng.Int63n(c.ChunkSize-1))
	}
	return p
}

func (c StreamConfig) withDefaults() StreamConfig {
	if c.Writers <= 0 {
		c.Writers = 4
	}
	if c.ObjectsPerWriter <= 0 {
		c.ObjectsPerWriter = 6
	}
	if c.ChunkSize <= 0 {
		c.ChunkSize = 64 << 10
	}
	if c.ChunksPerObject <= 0 {
		c.ChunksPerObject = 8
	}
	if c.Window <= 0 {
		c.Window = 4
	}
	if c.Replicas < 1 {
		c.Replicas = 1
	}
	if c.Providers <= 0 {
		c.Providers = 8
	}
	if c.Kills <= 0 {
		c.Kills = 3
	}
	return c
}

// StreamReport summarizes one streaming torture run.
type StreamReport struct {
	Plan         StreamPlan
	Torn         int // writes killed mid-stream (R=1 only; must be >= 1 there)
	Published    int // writes that committed a version
	Verified     int // published versions read back byte-for-byte
	VictimChunks int // chunks resident on the victim when it died (R>=2)
}

// streamPayload fills one object deterministically from its writer and
// object indices. The byte at position i depends on i modulo a prime
// that does not divide any power-of-two chunk size, so a swapped,
// shifted or torn chunk cannot reproduce the expected bytes.
func streamPayload(w, o int, size int64) []byte {
	data := make([]byte, size)
	seed := byte(w*37 + o*11 + 5)
	for i := range data {
		data[i] = seed + byte(i%251)
	}
	return data
}

// RunStream executes the streaming schedule and checks the data
// plane's contract:
//
//   - Torn uploads never publish: a write whose chunk stream dies
//     mid-payload fails as a whole, its version is never visible, and
//     no store retains the partial chunk at ANY length — checked
//     exactly, since every chunk in the workload is full-stripe, by
//     asserting each store's byte usage is a multiple of the chunk
//     size (the temp+rename / staging contract of PutFromReader).
//   - Published versions stay intact: every version a writer saw
//     commit reads back byte-for-byte through the framed transport.
//   - With R>=2, a provider dying mid-workload costs nothing: every
//     write still commits via the replica fan-out, and every published
//     version — including chunks whose only surviving copies are on
//     other providers — reconstructs from the survivors while the
//     victim is still down.
func RunStream(cfg StreamConfig) (StreamReport, error) {
	cfg = cfg.withDefaults()
	plan := cfg.Plan()
	report := StreamReport{Plan: plan}
	objSize := cfg.ChunkSize * int64(cfg.ChunksPerObject)

	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.ChunkSize = cfg.ChunkSize
	env.FaultInjection = true
	env.StoreURL = cfg.StoreURL
	svc, err := cluster.NewVersioning(env)
	if err != nil {
		return report, err
	}
	node, err := remote.Listen("127.0.0.1:0", remote.Roles{
		VM:   svc.VM,
		Meta: svc.Meta,
		Data: svc.Router,
	})
	if err != nil {
		return report, err
	}
	defer node.Close()
	ep := remote.Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()}

	// The kill switch. At R=1 it arms one mid-stream tear at a time:
	// the next chunk stream that lands on the victim dies after the
	// planned number of payload bytes, and each observed failure arms
	// the next tear until the plan is spent. At R>=2 the victim simply
	// dies, once, mid-workload.
	var armMu sync.Mutex
	armedKills := 0
	var killOnce sync.Once
	kill := func() {
		if cfg.Replicas >= 2 {
			killOnce.Do(func() { svc.Faults[plan.Victim].SetDown(true) })
			return
		}
		armMu.Lock()
		defer armMu.Unlock()
		if armedKills < len(plan.Torn) {
			svc.Faults[plan.Victim].FailPutStreamAfter(plan.Torn[armedKills])
			armedKills++
		}
	}

	type published struct {
		writer, object int
		version        uint64
	}
	var mu sync.Mutex
	var oks []published
	var failures []error
	var finished atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			client, err := remote.DialFramed(ep)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Errorf("writer %d: dial: %w", w, err))
				mu.Unlock()
				return
			}
			defer client.Close()
			geo := segtree.Geometry{Capacity: cluster.CapacityFor(objSize, cfg.ChunkSize), Page: cfg.ChunkSize}
			b, err := blob.Create(client.Services(), uint64(w+1), geo)
			if err != nil {
				mu.Lock()
				failures = append(failures, fmt.Errorf("writer %d: create: %w", w, err))
				mu.Unlock()
				return
			}
			for o := 0; o < cfg.ObjectsPerWriter; o++ {
				v, err := b.Write(0, streamPayload(w, o, objSize),
					blob.WriteOptions{Pipelined: true, Window: cfg.Window})
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("writer %d object %d: %w", w, o, err))
				} else {
					oks = append(oks, published{w, o, v})
				}
				mu.Unlock()
				if err != nil {
					// A torn write consumed its kill; arm the next one.
					kill()
				}
				if int(finished.Add(1)) >= plan.AfterObjects {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill() // schedules past the workload end still kill before checking
	report.Published = len(oks)
	report.Torn = len(failures)

	if cfg.Replicas >= 2 {
		if len(failures) > 0 {
			return report, fmt.Errorf("torture(seed=%d): R=%d writes failed despite the replica fan-out: %v",
				cfg.Seed, cfg.Replicas, failures[0])
		}
		n, _ := svc.Faults[plan.Victim].Usage()
		report.VictimChunks = n
		if n == 0 {
			return report, fmt.Errorf("torture(seed=%d): victim %d died holding no chunks — schedule lost its teeth",
				cfg.Seed, plan.Victim)
		}
	} else {
		if report.Torn == 0 {
			return report, fmt.Errorf("torture(seed=%d): no stream was torn after %d writes (victim %d) — schedule lost its teeth",
				cfg.Seed, plan.AfterObjects, plan.Victim)
		}
		for _, err := range failures {
			// Only the injected tears may fail writes at R=1. The error
			// crosses the RPC boundary, so match its message, not its type.
			if !strings.Contains(err.Error(), "injected fault") {
				return report, fmt.Errorf("torture(seed=%d): unexpected write failure: %w", cfg.Seed, err)
			}
		}
	}

	// Torn uploads never persist at any length: the workload stores
	// only full-stripe chunks, so any store whose byte usage is not a
	// whole multiple of the chunk size kept a partial payload that its
	// write protocol should have discarded.
	for i, f := range svc.Faults {
		count, bytesUsed := f.Usage()
		if bytesUsed != int64(count)*cfg.ChunkSize {
			return report, fmt.Errorf("torture(seed=%d): provider %d holds %d bytes over %d chunks — a torn upload persisted",
				cfg.Seed, i, bytesUsed, count)
		}
	}

	// Every published version reads back byte-for-byte over the framed
	// transport. At R>=2 the victim is still down here, so every one of
	// these reads that touches a victim-placed chunk is a degraded read
	// reconstructing from the surviving replicas.
	client, err := remote.DialFramed(ep)
	if err != nil {
		return report, err
	}
	defer client.Close()
	handles := make(map[int]*blob.Blob)
	for _, pub := range oks {
		b := handles[pub.writer]
		if b == nil {
			if b, err = blob.Open(client.Services(), uint64(pub.writer+1)); err != nil {
				return report, err
			}
			handles[pub.writer] = b
		}
		got, err := b.ReadAt(pub.version, 0, objSize)
		if err != nil {
			return report, fmt.Errorf("torture(seed=%d): published version %d of writer %d unreadable: %w",
				cfg.Seed, pub.version, pub.writer, err)
		}
		if !bytes.Equal(got, streamPayload(pub.writer, pub.object, objSize)) {
			return report, fmt.Errorf("torture(seed=%d): version %d of writer %d corrupt after the kill",
				cfg.Seed, pub.version, pub.writer)
		}
		report.Verified++
	}
	return report, nil
}
