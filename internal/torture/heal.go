package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
)

// HealConfig parameterizes one self-healing torture run: the usual
// overlap-heavy workload on a replicated deployment, except the
// seed-scheduled provider dies at the STORE level (its chunk store
// starts erroring) and nobody calls SetDown or Repair — detection,
// re-replication and read-repair must all happen autonomously, within
// a bounded number of virtual-time healer ticks.
type HealConfig struct {
	CrashConfig
	// MaxTicks bounds the healer ticks allowed to restore full
	// replication after each kill (default 400).
	MaxTicks int
}

// HealPlan is the seed-derived schedule: Victim's store dies after
// AfterCalls atomic writes; once the system has healed itself, Second
// (a different provider) dies too.
type HealPlan struct {
	Victim     provider.ID
	AfterCalls int
	Second     provider.ID
}

// Plan derives the schedule from the seed, on its own stream so it is
// independent of the call generator and of CrashConfig.Plan.
func (c HealConfig) Plan() HealPlan {
	providers := c.Providers
	if providers <= 0 {
		providers = 8
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x6865616c2d763100)) // "heal-v1"
	total := c.Writers * c.CallsPerWriter
	victim := provider.ID(rng.Intn(providers))
	second := provider.ID(rng.Intn(providers - 1))
	if second >= victim {
		second++
	}
	return HealPlan{
		Victim:     victim,
		AfterCalls: total/4 + rng.Intn(total/2+1),
		Second:     second,
	}
}

// HealReport summarizes one self-healing run.
type HealReport struct {
	Plan        HealPlan
	FailedCalls int   // writes that failed (must be 0 at R >= 2)
	Detected    bool  // the monitor flagged the victim from errors alone
	TicksFirst  int   // healer ticks to restore full replication after kill 1
	TicksSecond int   // ... after kill 2
	Scrubbed    int   // versions read back in full after kill 1 healed
	PostSecond  int   // versions read back in full after kill 2 healed
	Enqueued    int64 // chunks that entered the repair queue (scrub + read-repair)
	Dropped     int64 // enqueues shed by the bounded queue (backpressure)
	Revived     bool  // victim 1 returned to Live after its store recovered
}

// healKnobs are the self-heal parameters the torture run pins down so
// the tick math is deterministic: threshold 2, probation 30 virtual
// seconds (the virtual clock advances 1s per healer tick), a scrub
// budget of 32 chunks and 8 repairs per tick, and a repair queue of 64
// — smaller than the degraded set most seeds produce, so the
// drop-and-refind backpressure path is exercised, not just tolerated.
func healEnv(cfg HealConfig) cluster.Env {
	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.Probation = 30 * time.Second
	env.ScrubRate = 32
	env.RepairRate = 8
	env.RepairQueue = 64
	return env
}

// RunHeal executes the self-healing schedule. The contract it checks:
//
//   - Writes keep committing through the store-level kill (write
//     quorum), with zero failures at R >= 2, and the outcome stays
//     serializable.
//   - With NO operator action — no SetDown, no Repair call — the
//     monitor deduces the victim is down from observed store errors,
//     and the scrubber + read-repair queue restore every chunk to full
//     replication within MaxTicks virtual-time ticks.
//   - Every published snapshot then scrubs clean, a SECOND provider
//     loss heals the same way, and the first victim, once its store
//     recovers, is re-probed after probation and returns to service.
func RunHeal(cfg HealConfig) (HealReport, error) {
	if cfg.Replicas < 2 {
		return HealReport{}, errors.New("torture: RunHeal needs R >= 2")
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 400
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return HealReport{}, err
	}
	plan := cfg.Plan()
	report := HealReport{Plan: plan}

	svc, err := cluster.NewVersioning(healEnv(cfg))
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	// Virtual clock: one healer tick = one virtual second. The monitor
	// never reads the wall clock, so probation timing is deterministic.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })
	tick := func() {
		vsec.Add(1)
		svc.Healer.Tick()
	}
	// heal ticks until every known chunk is back at full degree and the
	// repair queue is empty; reports the ticks spent, or -1 on timeout.
	heal := func() int {
		for t := 1; t <= cfg.MaxTicks; t++ {
			tick()
			if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 {
				return t
			}
		}
		return -1
	}

	// The workload, racing a store-level kill. Note what is absent:
	// no svc.Providers.SetDown, no svc.Router.Repair, ever.
	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() { svc.Faults[plan.Victim].SetDown(true) })
	}
	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	report.FailedCalls = len(failures)
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): R=%d writes failed despite quorum: %w",
			cfg.Seed, cfg.Replicas, errors.Join(failures...))
	}

	// Atomicity survives the kill; these degraded reads also feed the
	// read-repair queue with exactly the chunks that needed failover.
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		return report, fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}

	// Self-healing round 1: no operator, bounded virtual time.
	report.TicksFirst = heal()
	if report.TicksFirst < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated chunks remain after %d ticks (victim %d): %+v",
			cfg.Seed, svc.Router.UnderReplicated(), cfg.MaxTicks, plan.Victim, svc.Healer.Stats())
	}
	report.Detected = svc.Health.State(plan.Victim) == provider.Down
	if !report.Detected {
		return report, fmt.Errorf("torture(seed=%d): victim %d healed around but never marked down (state %s)",
			cfg.Seed, plan.Victim, svc.Health.State(plan.Victim))
	}
	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot unreadable after self-heal: %w", cfg.Seed, err)
	}

	// Round 2: a different provider dies. Replication was restored, so
	// this too must heal without losing any published byte.
	svc.Faults[plan.Second].SetDown(true)
	report.TicksSecond = heal()
	if report.TicksSecond < 0 {
		return report, fmt.Errorf("torture(seed=%d): second kill (provider %d) did not heal in %d ticks: %+v",
			cfg.Seed, plan.Second, cfg.MaxTicks, svc.Healer.Stats())
	}
	n, err = be.Scrub()
	report.PostSecond = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot unreadable after second self-heal: %w", cfg.Seed, err)
	}

	// Recovery: the first victim's store comes back; probation probes
	// must return it to service without operator action.
	svc.Faults[plan.Victim].SetDown(false)
	for t := 0; t < cfg.MaxTicks && !report.Revived; t++ {
		tick()
		report.Revived = svc.Health.State(plan.Victim) == provider.Live
	}
	if !report.Revived {
		return report, fmt.Errorf("torture(seed=%d): victim %d never revived after its store recovered (state %s)",
			cfg.Seed, plan.Victim, svc.Health.State(plan.Victim))
	}

	st := svc.Healer.Stats()
	report.Enqueued = st.Enqueued
	report.Dropped = st.Dropped
	return report, nil
}
