package torture

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
	"repro/internal/vmanager"
)

// GCConfig parameterizes one version-lifecycle torture run: the usual
// overlap-heavy workload on a replicated self-healing deployment, with
// the retention policy and the reaper running CONTINUOUSLY against it
// — versions are dropped and their exclusive chunks deleted while
// writers publish, a reader holds an old version pinned, and a
// seed-scheduled provider dies at the store level mid-run.
type GCConfig struct {
	CrashConfig
	// KeepLast is the retention policy the reaper applies at every
	// pass (default 3).
	KeepLast int
	// MaxTicks bounds each post-workload convergence loop: healing to
	// full replication, and reaping to an empty pending set
	// (default 600).
	MaxTicks int
}

// GCPlan is the seed-derived schedule: Victim's store dies after
// AfterCalls atomic writes, racing the continuous retain/reap loop.
type GCPlan struct {
	Victim     provider.ID
	AfterCalls int
}

// Plan derives the schedule from the seed, on its own stream so it is
// independent of the call generator and of the crash/heal streams.
func (c GCConfig) Plan() GCPlan {
	providers := c.Providers
	if providers <= 0 {
		providers = 8
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x67632d736368656d)) // "gc-schem"
	total := c.Writers * c.CallsPerWriter
	return GCPlan{
		Victim:     provider.ID(rng.Intn(providers)),
		AfterCalls: total/4 + rng.Intn(total/2+1),
	}
}

// GCReport summarizes one version-lifecycle torture run.
type GCReport struct {
	Plan          GCPlan
	FailedCalls   int    // writes that failed (must be 0 at R >= 2)
	Detected      bool   // the monitor flagged the victim from errors alone
	HealTicks     int    // ticks to full re-replication after the kill
	PinnedVersion uint64 // the version the reader held pinned
	PinnedReads   int    // clean re-reads of the pinned version under GC fire
	Scrubbed      int    // retained versions read back in full at the end
	DroppedTotal  int64  // versions dropped by the continuous policy
	Reclaimed     int64  // versions fully reclaimed
	Exclusive     int    // pinned version's exclusive chunks verified deleted
	DeletedBytes  int64  // bytes the reaper freed in total
	Stats         string // reaper stats (diagnostics)
}

// gcEnv pins the deployment knobs so the schedule is reproducible:
// self-heal as in the heal schedule (threshold 2, small queue so
// backpressure is exercised), newest-first scrub order (the smarter
// scheduling option rides under fire here), and the reaper with the
// configured retention applied continuously at a bounded delete rate.
func gcEnv(cfg GCConfig) cluster.Env {
	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = cfg.Replicas
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.Probation = 30 * time.Second
	env.ScrubRate = 32
	env.RepairRate = 8
	env.RepairQueue = 64
	env.ScrubNewestFirst = true
	env.GC = true
	env.RetainLast = cfg.KeepLast
	env.GCRate = 8
	env.GCQueue = 64
	return env
}

// RunGC executes the version-lifecycle schedule. The contract:
//
//   - Writes keep committing through the store-level kill AND the
//     continuous retain/reap traffic (zero failures at R >= 2), and
//     the outcome stays serializable.
//   - A reader that pinned an early version before dropping began can
//     re-read it, byte-identical, for as long as it holds the pin —
//     through the provider loss, the self-heal and every GC pass.
//   - The victim is detected from errors alone and every chunk is
//     re-replicated within MaxTicks, exactly as without GC.
//   - Every retained version scrubs clean afterward (shared chunks
//     survive), and once the reader unpins and retention drops its
//     version, the version's exclusive chunks are REMOVED from every
//     live replica (verified store-by-store, and against usage
//     accounting), with the pending set fully drained.
func RunGC(cfg GCConfig) (GCReport, error) {
	if cfg.Replicas < 2 {
		return GCReport{}, errors.New("torture: RunGC needs R >= 2")
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 8
	}
	if cfg.KeepLast <= 0 {
		cfg.KeepLast = 3
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 600
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return GCReport{}, err
	}
	plan := cfg.Plan()
	report := GCReport{Plan: plan}

	svc, err := cluster.NewVersioning(gcEnv(cfg))
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	b := be.Blob()
	d := &mpiio.VersioningDriver{Backend: be}

	// Virtual clock: one healer tick = one virtual second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })
	tick := func() {
		vsec.Add(1)
		svc.Healer.Tick()
		svc.Reaper.Tick()
	}

	// Continuous GC: heal and reap concurrently with the workload.
	stopTicker := make(chan struct{})
	var tickerWG sync.WaitGroup
	tickerWG.Add(1)
	go func() {
		defer tickerWG.Done()
		for {
			select {
			case <-stopTicker:
				return
			default:
				tick()
				time.Sleep(100 * time.Microsecond)
			}
		}
	}()

	// The pinned reader: pin the earliest version still retained,
	// remember its bytes, and re-read it under fire until the workload
	// ends. The pin is what must keep those bytes alive through every
	// retention pass.
	readerErr := make(chan error, 1)
	var pinnedV atomic.Uint64
	var pinnedReads atomic.Int64
	readerDone := make(chan struct{})
	stopReader := make(chan struct{})
	go func() {
		defer close(readerDone)
		// Version 1 may not even be ticketed yet when the reader
		// starts; WaitPublished rejects unassigned versions, so poll
		// until the first writer has a ticket.
		for b.WaitPublished(1) != nil {
			select {
			case <-stopReader:
				return
			default:
				time.Sleep(50 * time.Microsecond)
			}
		}
		var v uint64
		for v = 1; ; v++ {
			err := b.Pin(v)
			if err == nil {
				break
			}
			if errors.Is(err, vmanager.ErrVersionDropped) {
				continue // retention beat us to this one; try the next
			}
			readerErr <- err
			return
		}
		pinnedV.Store(v)
		size, err := b.Size(v)
		if err != nil {
			readerErr <- err
			return
		}
		want, err := b.ReadAt(v, 0, size)
		if err != nil {
			readerErr <- err
			return
		}
		for {
			select {
			case <-stopReader:
				return
			default:
			}
			got, err := b.ReadAt(v, 0, size)
			if err != nil {
				readerErr <- fmt.Errorf("pinned v%d unreadable: %w", v, err)
				return
			}
			if !bytes.Equal(want, got) {
				readerErr <- fmt.Errorf("pinned v%d changed under GC", v)
				return
			}
			pinnedReads.Add(1)
		}
	}()

	// The workload, racing a store-level kill and the retain/reap loop.
	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() { svc.Faults[plan.Victim].SetDown(true) })
	}
	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()
	close(stopReader)
	<-readerDone
	close(stopTicker)
	tickerWG.Wait()

	report.FailedCalls = len(failures)
	report.PinnedVersion = pinnedV.Load()
	report.PinnedReads = int(pinnedReads.Load())
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): R=%d writes failed under GC: %w",
			cfg.Seed, cfg.Replicas, errors.Join(failures...))
	}
	select {
	case err := <-readerErr:
		return report, fmt.Errorf("torture(seed=%d): pinned reader: %w", cfg.Seed, err)
	default:
	}
	if report.PinnedReads == 0 {
		return report, fmt.Errorf("torture(seed=%d): pinned reader never completed a read — schedule lost its teeth", cfg.Seed)
	}

	// Serializability of the surviving latest state.
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		return report, fmt.Errorf("torture(seed=%d): %w", cfg.Seed, err)
	}

	// Self-heal to quiescence under the same tick loop GC shares.
	healed := -1
	for t := 1; t <= cfg.MaxTicks; t++ {
		tick()
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 {
			healed = t
			break
		}
	}
	report.HealTicks = healed
	if healed < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated chunks after %d ticks (victim %d)",
			cfg.Seed, svc.Router.UnderReplicated(), cfg.MaxTicks, plan.Victim)
	}
	report.Detected = svc.Health.State(plan.Victim) == provider.Down
	if !report.Detected {
		return report, fmt.Errorf("torture(seed=%d): victim %d never detected (state %s)",
			cfg.Seed, plan.Victim, svc.Health.State(plan.Victim))
	}

	// The pinned version survived everything; release it, drop it, and
	// prove its exclusive bytes actually come back from every live
	// replica.
	pv := report.PinnedVersion
	sizePinned, err := b.Size(pv)
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): pinned version lost before unpin: %w", cfg.Seed, err)
	}
	if _, err := b.ReadAt(pv, 0, sizePinned); err != nil {
		return report, fmt.Errorf("torture(seed=%d): pinned version unreadable before unpin: %w", cfg.Seed, err)
	}
	if err := b.Unpin(pv); err != nil {
		return report, err
	}
	dropped, err := b.Retain(cfg.KeepLast)
	if err != nil {
		return report, err
	}
	droppedPinned := false
	for _, v := range dropped {
		if v == pv {
			droppedPinned = true
		}
	}
	if !droppedPinned {
		return report, fmt.Errorf("torture(seed=%d): unpinned v%d not dropped by retention (dropped %v) — schedule lost its teeth",
			cfg.Seed, pv, dropped)
	}
	exclusive, err := b.ExclusiveChunks(pv)
	if err != nil {
		return report, err
	}
	report.Exclusive = len(exclusive)

	// Reap to a drained pending set, with usage watched across it.
	usageBefore := liveBytes(svc)
	statsBefore := svc.Reaper.Stats()
	drained := false
	for t := 0; t < cfg.MaxTicks && !drained; t++ {
		tick()
		info, err := b.GCInfo()
		if err != nil {
			return report, err
		}
		drained = len(info.Pending) == 0
	}
	st := svc.Reaper.Stats()
	report.DroppedTotal = st.AutoDropped + int64(len(dropped))
	report.Reclaimed = st.Reclaimed
	report.DeletedBytes = st.DeletedBytes
	report.Stats = fmt.Sprintf("%+v", st)
	if !drained {
		return report, fmt.Errorf("torture(seed=%d): pending versions not reclaimed in %d ticks: %+v",
			cfg.Seed, cfg.MaxTicks, st)
	}
	if st.Deleted == 0 {
		return report, fmt.Errorf("torture(seed=%d): continuous GC deleted nothing — schedule lost its teeth: %+v", cfg.Seed, st)
	}

	// The pinned version's exclusive chunks are gone from EVERY live
	// replica (store-level probes — the bsctl usage substrate).
	for _, key := range exclusive {
		if _, ok := svc.Router.Locate(key); ok {
			report.Stats = fmt.Sprintf("%+v", svc.Reaper.Stats())
			return report, fmt.Errorf("torture(seed=%d): reclaimed chunk %s still placed", cfg.Seed, key)
		}
		for _, p := range svc.Providers.Providers() {
			if p.Down() {
				continue // dead machine: unreachable copy, not a live replica
			}
			if _, err := p.Store().Len(key); !errors.Is(err, chunk.ErrNotFound) {
				return report, fmt.Errorf("torture(seed=%d): live provider %d still holds reclaimed chunk %s (%v)",
					cfg.Seed, p.ID(), key, err)
			}
		}
	}
	// Usage accounting agrees with the deletion stats.
	if freed, claimed := usageBefore-liveBytes(svc), st.DeletedBytes-statsBefore.DeletedBytes; freed != claimed {
		return report, fmt.Errorf("torture(seed=%d): usage shrank by %d bytes but the reaper claims %d",
			cfg.Seed, freed, claimed)
	}

	// Shared chunks survive: every retained version scrubs clean.
	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): retained version failed scrub after GC: %w", cfg.Seed, err)
	}
	vs, err := b.Versions()
	if err != nil {
		return report, err
	}
	if n != len(vs) {
		return report, fmt.Errorf("torture(seed=%d): scrubbed %d of %d retained versions", cfg.Seed, n, len(vs))
	}
	return report, nil
}

// liveBytes sums stored bytes across providers not flagged down.
func liveBytes(svc *cluster.Versioning) int64 {
	var total int64
	for _, u := range svc.Router.Usage() {
		if !u.Down {
			total += u.Bytes
		}
	}
	return total
}
