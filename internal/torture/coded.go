package torture

import (
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"sync/atomic"
	"time"

	"repro/internal/cluster"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/verify"
)

// CodedConfig parameterizes the erasure-coded correlated-loss torture
// run: the usual overlap-heavy workload on an rs-k+m deployment whose
// fragments spread one-per-domain, except the seed-scheduled loss
// takes out TWO whole failure domains — the first mid-workload (writes
// must keep committing at quorum n-1), the second after the last write
// but BEFORE any healing, so every read of every chunk faces exactly
// two missing fragments and must reconstruct from the surviving k.
// Both kills are store-level with self-heal on: nobody calls SetDown
// or Repair, detection and re-encode repair must be autonomous.
type CodedConfig struct {
	CrashConfig
	// Coding is the placement spec (default "rs-4+2"). Replicas must
	// stay zero: the schedule exists for the coded mode.
	Coding string
	// Domains is the failure-domain count (must be >= k+m so the
	// spread places at most one fragment of any chunk per domain, and
	// the two-domain loss costs each chunk at most two fragments;
	// default 6).
	Domains int
	// MaxTicks bounds the healer ticks allowed to re-encode every
	// chunk back to full degree after the kills (default 400).
	MaxTicks int
}

// CodedPlan is the seed-derived schedule: every provider of
// FirstDomain dies after AfterCalls atomic writes, every provider of
// SecondDomain dies once the workload drains — two distinct domains,
// so the read path sees the worst survivable loss (m=2 fragments at
// rs-4+2) before repair gets a tick.
type CodedPlan struct {
	FirstDomain   int
	SecondDomain  int
	AfterCalls    int
	FirstVictims  []provider.ID
	SecondVictims []provider.ID
}

// Plan derives the schedule from the seed, on its own stream so it is
// independent of the call generator and the other schedule families.
func (c CodedConfig) Plan() CodedPlan {
	providers := c.Providers
	if providers <= 0 {
		providers = 12
	}
	domains := c.Domains
	if domains <= 0 {
		domains = 6
	}
	rng := rand.New(rand.NewSource(c.Seed ^ 0x636f6465642d7631)) // "coded-v1"
	total := c.Writers * c.CallsPerWriter
	perm := rng.Perm(domains)
	plan := CodedPlan{
		FirstDomain:  perm[0],
		SecondDomain: perm[1],
		AfterCalls:   total/4 + rng.Intn(total/2+1),
	}
	first := fmt.Sprintf("zone%d", plan.FirstDomain)
	second := fmt.Sprintf("zone%d", plan.SecondDomain)
	for i := 0; i < providers; i++ {
		switch provider.DomainLabel(i, providers, domains) {
		case first:
			plan.FirstVictims = append(plan.FirstVictims, provider.ID(i))
		case second:
			plan.SecondVictims = append(plan.SecondVictims, provider.ID(i))
		}
	}
	return plan
}

// CodedReport summarizes one coded correlated-loss run.
type CodedReport struct {
	Plan        CodedPlan
	FailedCalls int   // writes that failed (must be 0: quorum n-1 absorbs one dead domain)
	Detected    int   // victims the monitor flagged down from errors alone
	Ticks       int   // healer ticks to full degree AND achievable spread
	Scrubbed    int   // versions read back in full after the heal
	SpreadFound int64 // spread violations the scrubber fed into repair
	Enqueued    int64 // chunks that entered the repair queue
	Dropped     int64 // enqueues shed by the bounded queue
}

// codedEnv pins the same self-heal knobs as the domain schedule (see
// domainEnv) on an erasure-coded deployment.
func codedEnv(cfg CodedConfig) cluster.Env {
	env := cluster.Default()
	env.Providers = cfg.Providers
	env.Replicas = 0
	env.Coding = cfg.Coding
	env.Domains = cfg.Domains
	env.SelfHeal = true
	env.FaultInjection = true
	env.FailThreshold = 2
	env.Probation = 30 * time.Second
	env.ScrubRate = 32
	env.RepairRate = 8
	env.RepairQueue = 64
	return env
}

// RunCodedDomain executes the two-domain-loss schedule on erasure-coded
// placement. The contract it checks:
//
//   - Writes keep committing through the loss of a whole failure
//     domain (one-fragment-per-domain placement means each chunk loses
//     at most one of its k+m fragments; the default n-1 write quorum
//     absorbs that), with zero failures, and the outcome stays
//     serializable.
//   - With a SECOND whole domain dead before any repair, every chunk
//     is missing m=2 fragments — the worst survivable loss — and every
//     read still returns byte-identical data by reconstructing from
//     the surviving k fragments.
//   - With NO operator action the monitor deduces every victim of both
//     domains is down, and the healer re-encodes every chunk back to
//     full k+m degree into the surviving domains within MaxTicks
//     virtual-time ticks, leaving no fragment referenced in either
//     dead domain and the spread audit clean.
//   - Every published snapshot then scrubs clean.
func RunCodedDomain(cfg CodedConfig) (CodedReport, error) {
	if cfg.Replicas != 0 {
		return CodedReport{}, fmt.Errorf("torture: RunCodedDomain is the coded schedule; Replicas must be 0, got %d", cfg.Replicas)
	}
	if cfg.Coding == "" {
		cfg.Coding = "rs-4+2"
	}
	k, m, err := provider.ParseCoding(cfg.Coding)
	if err != nil {
		return CodedReport{}, fmt.Errorf("torture: %w", err)
	}
	if m < 2 {
		return CodedReport{}, fmt.Errorf("torture: RunCodedDomain kills two domains; %s (m=%d) cannot survive it", cfg.Coding, m)
	}
	if cfg.Providers <= 0 {
		cfg.Providers = 12
	}
	if cfg.Domains <= 0 {
		cfg.Domains = 6
	}
	if cfg.Domains < k+m {
		return CodedReport{}, fmt.Errorf("torture: RunCodedDomain needs Domains >= k+m (got %d < %d): a domain must never hold two fragments of one chunk",
			cfg.Domains, k+m)
	}
	perDomain := cfg.Providers / cfg.Domains
	if cfg.Providers-2*perDomain < k+m {
		return CodedReport{}, fmt.Errorf("torture: %d providers minus two domains of %d leave fewer than %d for full-degree repair",
			cfg.Providers, perDomain, k+m)
	}
	if cfg.MaxTicks <= 0 {
		cfg.MaxTicks = 400
	}
	perWriter, err := cfg.Calls()
	if err != nil {
		return CodedReport{}, err
	}
	plan := cfg.Plan()
	report := CodedReport{Plan: plan}

	svc, err := cluster.NewVersioning(codedEnv(cfg))
	if err != nil {
		return report, err
	}
	be, err := svc.Backend(1, cfg.Span())
	if err != nil {
		return report, err
	}
	d := &mpiio.VersioningDriver{Backend: be}

	// Virtual clock: one healer tick = one virtual second.
	var vsec atomic.Int64
	svc.Health.SetClock(func() time.Time { return time.Unix(vsec.Load(), 0) })
	tick := func() {
		vsec.Add(1)
		svc.Healer.Tick()
	}

	// The workload, racing the first whole-domain store-level kill. No
	// SetDown, no Repair — ever.
	var completed atomic.Int64
	var killOnce sync.Once
	kill := func() {
		killOnce.Do(func() {
			for _, id := range plan.FirstVictims {
				svc.Faults[id].SetDown(true)
			}
		})
	}
	var mu sync.Mutex
	okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
	var failures []error
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, call := range perWriter[w] {
				vec, err := verify.MakeVec(call)
				if err == nil {
					err = d.WriteList(vec, true)
				}
				mu.Lock()
				if err != nil {
					failures = append(failures, fmt.Errorf("call %d: %w", call.ID, err))
				} else {
					okCalls = append(okCalls, call)
				}
				mu.Unlock()
				if int(completed.Add(1)) >= plan.AfterCalls {
					kill()
				}
			}
		}(w)
	}
	wg.Wait()
	kill()

	report.FailedCalls = len(failures)
	if len(failures) > 0 {
		return report, fmt.Errorf("torture(seed=%d): %s writes failed despite one-fragment-per-domain spread + n-1 quorum: %w",
			cfg.Seed, cfg.Coding, errors.Join(failures...))
	}

	// Second domain dies before repair gets a tick: every chunk is now
	// missing up to m fragments, and atomicity must survive on pure
	// reconstruction — any k of the surviving fragments rebuild the
	// exact original bytes.
	for _, id := range plan.SecondVictims {
		svc.Faults[id].SetDown(true)
	}
	if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
		return report, fmt.Errorf("torture(seed=%d): degraded reconstruction at m=%d losses: %w", cfg.Seed, m, err)
	}

	// Autonomous healing: converged means the repair queue is drained,
	// every chunk is back at full k+m degree, AND the spread audit is
	// clean against the surviving domains (fragments double up where
	// the domain count no longer covers the degree — that is the
	// audit's achievable bound, not a violation).
	report.Ticks = -1
	for t := 1; t <= cfg.MaxTicks; t++ {
		tick()
		if svc.Healer.QueueLen() == 0 && svc.Router.UnderReplicated() == 0 && len(svc.Router.SpreadAudit()) == 0 {
			report.Ticks = t
			break
		}
	}
	if report.Ticks < 0 {
		return report, fmt.Errorf("torture(seed=%d): %d under-replicated / %d spread-violated chunks remain after %d ticks (domains %d+%d = %v+%v): %+v",
			cfg.Seed, svc.Router.UnderReplicated(), len(svc.Router.SpreadAudit()), cfg.MaxTicks,
			plan.FirstDomain, plan.SecondDomain, plan.FirstVictims, plan.SecondVictims, svc.Healer.Stats())
	}
	victims := append(append([]provider.ID(nil), plan.FirstVictims...), plan.SecondVictims...)
	for _, id := range victims {
		if svc.Health.State(id) == provider.Down {
			report.Detected++
		}
	}
	if report.Detected != len(victims) {
		return report, fmt.Errorf("torture(seed=%d): only %d of %d domain victims detected down: %v",
			cfg.Seed, report.Detected, len(victims), victims)
	}
	// No fragment may remain referenced in either dead domain: its
	// stores are gone, so a reference there is a latent degraded read.
	dead := map[string]bool{
		fmt.Sprintf("zone%d", plan.FirstDomain):  true,
		fmt.Sprintf("zone%d", plan.SecondDomain): true,
	}
	for _, key := range svc.Router.Keys() {
		ids, _ := svc.Router.Locate(key)
		for _, id := range ids {
			if dead[svc.Providers.DomainOf(id)] {
				return report, fmt.Errorf("torture(seed=%d): chunk %s still placed in dead domain %s: %v",
					cfg.Seed, key, svc.Providers.DomainOf(id), ids)
			}
		}
	}
	n, err := be.Scrub()
	report.Scrubbed = n
	if err != nil {
		return report, fmt.Errorf("torture(seed=%d): snapshot unreadable after coded domain loss healed: %w", cfg.Seed, err)
	}

	st := svc.Healer.Stats()
	report.SpreadFound = st.SpreadFound
	report.Enqueued = st.Enqueued
	report.Dropped = st.Dropped
	return report, nil
}
