package torture

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/core"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/segtree"
	"repro/internal/verify"
	"repro/internal/vmanager"
)

// faultyBackend hand-assembles a versioning deployment whose every
// data provider is wrapped in a fault injector, with the given
// group-commit configuration.
func faultyBackend(t *testing.T, cfg vmanager.BatchConfig, providers int, span int64) (*core.VersioningBackend, []*chunk.FaultStore) {
	t.Helper()
	vm := vmanager.New(iosim.CostModel{})
	vm.SetBatching(cfg)
	mgr := provider.NewManager()
	var faults []*chunk.FaultStore
	for i := 0; i < providers; i++ {
		f := chunk.NewFaultStore(chunk.NewMemStore(nil))
		faults = append(faults, f)
		mgr.Register(provider.New(provider.ID(i), f))
	}
	svc := blob.Services{
		VM:   vm,
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	page := int64(4 << 10)
	pages := (span + page - 1) / page
	cap := page
	for cap < pages*page {
		cap <<= 1
	}
	be, err := core.NewVersioning(svc, 1, segtree.Geometry{Capacity: cap, Page: page})
	if err != nil {
		t.Fatal(err)
	}
	return be, faults
}

// TestFaultMidBatchDoesNotCorruptPeers injects chunk-store failures
// into a group-committed concurrent write storm and asserts the suite's
// core guarantee: a failed writer surfaces its error and never corrupts
// the published snapshots of the writers batched alongside it — the
// final state stays serializable over exactly the successful calls.
func TestFaultMidBatchDoesNotCorruptPeers(t *testing.T) {
	for _, mb := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("maxbatch=%d", mb), func(t *testing.T) {
			cfg := tortureConfig(11)
			perWriter, err := cfg.Calls()
			if err != nil {
				t.Fatal(err)
			}
			be, faults := faultyBackend(t,
				vmanager.BatchConfig{MaxBatch: mb, MaxDelay: 200 * time.Microsecond},
				4, cfg.Span())
			d := &mpiio.VersioningDriver{Backend: be}

			// Arm a burst of put failures on every provider; under the
			// concurrent storm they land mid-batch, inside groups whose
			// other members succeed.
			for _, f := range faults {
				f.FailNextPuts(2)
			}

			var mu sync.Mutex
			okCalls := make([]verify.Call, 0, cfg.Writers*cfg.CallsPerWriter)
			var failed int
			var wg sync.WaitGroup
			for w := 0; w < cfg.Writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					for _, call := range perWriter[w] {
						vec, err := verify.MakeVec(call)
						if err != nil {
							t.Error(err)
							return
						}
						err = d.WriteList(vec, true)
						mu.Lock()
						if err != nil {
							if !errors.Is(err, chunk.ErrInjected) {
								t.Errorf("call %d: unexpected error %v", call.ID, err)
							}
							failed++
						} else {
							okCalls = append(okCalls, call)
						}
						mu.Unlock()
					}
				}(w)
			}
			wg.Wait()
			if failed == 0 {
				t.Fatal("no injected failure fired; the test exercised nothing")
			}
			if len(okCalls) == 0 {
				t.Fatal("every call failed; cannot check peers")
			}

			// Serializability over the successful calls only: if a dead
			// writer's bytes leaked into the image, the checker reports
			// them as foreign data.
			if err := verify.CheckCalls(reader{d}, okCalls); err != nil {
				t.Fatalf("failed writer corrupted batch peers: %v", err)
			}

			// Publication never wedges: every assigned ticket resolved
			// (failed ones as tombstones), so latest == total calls.
			latest, err := be.Latest()
			if err != nil {
				t.Fatal(err)
			}
			if want := core.Version(cfg.Writers * cfg.CallsPerWriter); latest != want {
				t.Fatalf("latest published %d, want %d (a failed writer wedged publication)", latest, want)
			}
		})
	}
}

// TestFaultInPipelineSurfacesOnFlush: a mid-train chunk failure must
// surface on Flush while the rest of the train publishes.
func TestFaultInPipelineSurfacesOnFlush(t *testing.T) {
	be, faults := faultyBackend(t, vmanager.BatchConfig{MaxBatch: 8, MaxDelay: 100 * time.Microsecond}, 2, 1<<20)
	pipe := be.NewPipe(4)
	faults[0].FailNextPuts(1)
	var submitted int
	for i := 0; i < 12; i++ {
		buf := make([]byte, 4096)
		for j := range buf {
			buf[j] = byte(i + 1)
		}
		vec, err := extent.NewVec(extent.List{{Offset: int64(i) * 4096, Length: 4096}}, buf)
		if err != nil {
			t.Fatal(err)
		}
		if err := pipe.Submit(vec); err != nil {
			break // earlier failure surfaced early; fine
		}
		submitted++
	}
	if _, err := pipe.Flush(); !errors.Is(err, chunk.ErrInjected) {
		t.Fatalf("Flush error = %v, want injected fault", err)
	}
	// The train's survivors still published: publication is not wedged.
	latest, err := be.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if latest == 0 || latest > core.Version(submitted) {
		t.Fatalf("latest = %d after %d submissions", latest, submitted)
	}
}
