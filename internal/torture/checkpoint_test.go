package torture

import (
	"fmt"
	"testing"
)

// ckptConfig is the standard checkpoint-blaster schedule shape: 4
// ranks checkpointing 6 epochs of a 4x4KiB strided pattern over 8
// providers, keep-newest-2 retention, restore readers, and the
// seed-scheduled store-level kill.
func ckptConfig(seed int64, replicas int) CheckpointConfig {
	return CheckpointConfig{
		Seed:     seed,
		Replicas: replicas,
	}
}

// TestCheckpointSchedule is the checkpoint-blaster torture suite:
// every checkpoint write must commit through the kill and the
// continuous reap traffic, every restore of a pinned version must
// decode to whole (rank, epoch) stamps, the victim must be detected
// and healed, and the metrics registry must stay monotone and
// self-consistent under all of it — ending with publish/repair/reap
// counters that match the work actually done.
func TestCheckpointSchedule(t *testing.T) {
	for _, r := range []int{2, 3} {
		t.Run(fmt.Sprintf("R=%d", r), func(t *testing.T) {
			for _, seed := range seeds(t) {
				rep, err := RunCheckpoint(ckptConfig(seed, r))
				if err != nil {
					t.Fatalf("replay with REPRO_TORTURE_SEED=%d: %v", seed, err)
				}
				if rep.FailedWrites != 0 {
					t.Fatalf("seed %d: %d checkpoint writes failed at R=%d", seed, rep.FailedWrites, r)
				}
				if !rep.Detected {
					t.Fatalf("seed %d: victim never detected: %+v", seed, rep)
				}
				if rep.Restores == 0 || rep.MetricChecks == 0 {
					t.Fatalf("seed %d: schedule lost its teeth: %+v", seed, rep)
				}
				if rep.Repaired == 0 || rep.ReapDeleted == 0 {
					t.Fatalf("seed %d: background loops left no metric tracks: %+v", seed, rep)
				}
				t.Logf("seed %d R=%d: victim %d killed after epoch %d; %d restores verified, healed in %d ticks; %d mid-churn registry snapshots consistent; publish=%g repaired=%d reaped=%d",
					seed, r, rep.Plan.Victim, rep.Plan.AfterEpoch, rep.Restores,
					rep.HealTicks, rep.MetricChecks, rep.PublishTotal, rep.Repaired, rep.ReapDeleted)
			}
		})
	}
}

// TestCheckpointPlanDeterminism: equal seeds derive equal schedules,
// schedules vary with the seed, and the checkpoint stream is
// independent of the GC stream.
func TestCheckpointPlanDeterminism(t *testing.T) {
	a := ckptConfig(5, 2).Plan()
	b := ckptConfig(5, 2).Plan()
	if a != b {
		t.Fatalf("same seed planned %+v vs %+v", a, b)
	}
	seen := map[CheckpointPlan]bool{}
	for seed := int64(1); seed <= 8; seed++ {
		cfg := ckptConfig(seed, 2).withDefaults()
		p := cfg.Plan()
		if p.AfterEpoch < 2 || p.AfterEpoch > cfg.Epochs {
			t.Fatalf("seed %d: kill epoch %d outside (1, %d]", seed, p.AfterEpoch, cfg.Epochs)
		}
		seen[p] = true
	}
	if len(seen) < 2 {
		t.Fatal("schedules do not vary with the seed")
	}
	if cp, gp := ckptConfig(5, 2).Plan(), gcConfig(5, 2).Plan(); int(cp.Victim) == int(gp.Victim) && cp.AfterEpoch == gp.AfterCalls {
		t.Fatalf("checkpoint plan %+v collides with gc plan %+v — streams not independent", cp, gp)
	}
}

// TestCheckpointRejectsUnreplicated: the schedule kills a provider, so
// R=1 would conflate data loss with the write path; refuse it.
func TestCheckpointRejectsUnreplicated(t *testing.T) {
	if _, err := RunCheckpoint(ckptConfig(1, 1)); err == nil {
		t.Fatal("RunCheckpoint accepted R=1")
	}
}

// TestCheckpointStampRoundTrip: the payload byte encodes (rank, epoch)
// losslessly over the whole configured space.
func TestCheckpointStampRoundTrip(t *testing.T) {
	cfg := CheckpointConfig{}.withDefaults()
	seen := map[byte]bool{}
	for e := 1; e <= cfg.Epochs; e++ {
		for r := 0; r < cfg.Ranks; r++ {
			s := cfg.stamp(r, e)
			if s == 0 {
				t.Fatalf("stamp(%d,%d) = 0 — collides with unwritten bytes", r, e)
			}
			if seen[s] {
				t.Fatalf("stamp(%d,%d) = %d not unique", r, e, s)
			}
			seen[s] = true
			if cfg.stampRank(s) != r || cfg.stampEpoch(s) != e {
				t.Fatalf("stamp(%d,%d) decodes to (%d,%d)", r, e, cfg.stampRank(s), cfg.stampEpoch(s))
			}
		}
	}
}
