// Package integration_test exercises the whole stack end to end:
// random concurrent workloads through every atomicity-providing
// configuration checked by the serializability verifier, MPI-I/O over
// the TCP service, snapshot isolation under write storms, diff-driven
// consumers, and failure injection on the write path.
package integration_test

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/bench"
	"repro/internal/blob"
	"repro/internal/chunk"
	"repro/internal/cluster"
	"repro/internal/core"
	"repro/internal/datatype"
	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metadata"
	"repro/internal/mpi"
	"repro/internal/mpiio"
	"repro/internal/provider"
	"repro/internal/remote"
	"repro/internal/segtree"
	"repro/internal/verify"
	"repro/internal/vmanager"
	"repro/internal/workload"
)

func fastEnv() cluster.Env {
	e := cluster.Default()
	e.Providers = 4
	e.MetaShards = 4
	e.ChunkSize = 2048
	return e
}

// TestPropRandomOverlapSerializableEverySystem is the central
// correctness property of the whole reproduction: for random
// overlapped non-contiguous workloads, every system claiming MPI
// atomicity produces serializable outcomes.
func TestPropRandomOverlapSerializableEverySystem(t *testing.T) {
	systems := bench.AllAtomicSystems()
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		spec := workload.OverlapSpec{
			Clients:         r.Intn(6) + 2,
			Regions:         r.Intn(12) + 1,
			RegionSize:      int64(r.Intn(2000) + 16),
			OverlapFraction: []float64{0, 0.5, 1}[r.Intn(3)],
		}
		kind := systems[r.Intn(len(systems))]
		res, err := bench.RunOverlap(kind, fastEnv(), spec, bench.OverlapOptions{
			Iterations: r.Intn(2) + 1,
			Verify:     true,
		})
		if err != nil {
			t.Logf("seed %d %v: %v", seed, kind, err)
			return false
		}
		if !res.Verified {
			t.Logf("seed %d %v: %v", seed, kind, res.VerifyErr)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// TestMPIIOTileOverRPC runs the tile workload through the MPI-I/O
// layer against the versioning service running over real TCP.
func TestMPIIOTileOverRPC(t *testing.T) {
	mgr, _ := provider.NewPool(4, iosim.CostModel{})
	node, err := remote.Listen("127.0.0.1:0", remote.Roles{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(4, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	})
	if err != nil {
		t.Fatal(err)
	}
	defer node.Close()
	cli, err := remote.Dial(remote.Endpoints{VM: node.Addr(), Meta: node.Addr(), Data: node.Addr()})
	if err != nil {
		t.Fatal(err)
	}
	defer cli.Close()

	spec := workload.TileSpec{
		TilesX: 2, TilesY: 2,
		TileX: 16, TileY: 16,
		ElementSize: 4,
		OverlapX:    4, OverlapY: 4,
	}
	w, h := spec.ArrayDims()
	be, err := core.NewVersioning(cli.Services(), 1, segtree.Geometry{
		Capacity: cluster.CapacityFor(int64(w)*int64(h)*spec.ElementSize, 1024),
		Page:     1024,
	})
	if err != nil {
		t.Fatal(err)
	}
	drv := &mpiio.VersioningDriver{Backend: be}
	err = mpi.Run(spec.Ranks(), func(c *mpi.Comm) error {
		f := mpiio.Open(c, drv)
		f.SetAtomicity(true)
		if err := f.SetView(mpiio.View{Disp: 0, Etype: datatype.Byte, Filetype: spec.Subarray(c.Rank())}); err != nil {
			return err
		}
		buf := bytes.Repeat([]byte{byte(c.Rank() + 1)}, int(spec.BytesPerRank()))
		return f.WriteAt(0, buf)
	})
	if err != nil {
		t.Fatal(err)
	}
	// Verify serializability of the remote outcome.
	var calls []verify.Call
	for r := 0; r < spec.Ranks(); r++ {
		calls = append(calls, verify.Call{ID: r + 1, Extents: spec.ExtentsFor(r)})
	}
	if err := verify.CheckCalls(driverReader{drv}, calls); err != nil {
		t.Fatal(err)
	}
}

type driverReader struct{ d mpiio.Driver }

func (r driverReader) ReadList(q extent.List, atomic bool) ([]byte, error) {
	return r.d.ReadList(q, atomic)
}

// TestSnapshotIsolationUnderWriteStorm pins one version and re-reads
// it repeatedly while writers hammer the same ranges; every re-read
// must be bit-identical.
func TestSnapshotIsolationUnderWriteStorm(t *testing.T) {
	svc, err := cluster.NewVersioning(fastEnv())
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	l := extent.List{{Offset: 0, Length: 4096}, {Offset: 128 << 10, Length: 4096}}
	buf := bytes.Repeat([]byte{0xAA}, int(l.TotalLength()))
	vec, _ := extent.NewVec(l, buf)
	pinned, err := be.WriteList(vec)
	if err != nil {
		t.Fatal(err)
	}
	want, err := be.ReadListAt(pinned, l)
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				data := bytes.Repeat([]byte{byte(w*16 + i%16)}, int(l.TotalLength()))
				v, _ := extent.NewVec(l, data)
				if _, err := be.WriteList(v); err != nil {
					t.Error(err)
					return
				}
			}
		}(w)
	}
	for i := 0; i < 50; i++ {
		got, err := be.ReadListAt(pinned, l)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(got, want) {
			t.Fatalf("snapshot %d changed under concurrent writes (read %d)", pinned, i)
		}
	}
	close(stop)
	wg.Wait()
}

// TestDiffDrivenConsumer verifies the application-level versioning
// flow: a consumer uses Diff to fetch only what each timestep changed
// and reconstructs the full state incrementally.
func TestDiffDrivenConsumer(t *testing.T) {
	svc, err := cluster.NewVersioning(fastEnv())
	if err != nil {
		t.Fatal(err)
	}
	be, err := svc.Backend(1, 64<<10)
	if err != nil {
		t.Fatal(err)
	}
	const space = 64 << 10
	oracle := make([]byte, space)
	mirror := make([]byte, space)
	r := rand.New(rand.NewSource(11))
	prev := core.Version(0)
	for step := 1; step <= 10; step++ {
		// Producer writes a random non-contiguous update.
		var l extent.List
		for i := 0; i < r.Intn(4)+1; i++ {
			off := int64(r.Intn(space - 512))
			l = append(l, extent.Extent{Offset: off, Length: int64(r.Intn(512) + 1)})
		}
		l = l.Normalize()
		buf := make([]byte, l.TotalLength())
		r.Read(buf)
		vec, _ := extent.NewVec(l, buf)
		v, err := be.WriteList(vec)
		if err != nil {
			t.Fatal(err)
		}
		vec.ScatterInto(oracle, 0)

		// Consumer fetches only the diff and patches its mirror.
		d, err := be.Diff(prev, v)
		if err != nil {
			t.Fatal(err)
		}
		if len(d) > 0 {
			data, err := be.ReadListAt(v, d)
			if err != nil {
				t.Fatal(err)
			}
			patch := extent.Vec{Extents: d, Buf: data}
			patch.ScatterInto(mirror, 0)
		}
		if !bytes.Equal(mirror, oracle) {
			t.Fatalf("step %d: diff-driven mirror diverged", step)
		}
		prev = v
	}
}

// TestFailedWriteDoesNotWedgeTheBlob injects chunk-store failures and
// checks that (a) the failed write surfaces its error, (b) later
// writers still publish, (c) the failed version reads like its
// predecessor, and (d) borrow references to the failed version
// resolve.
func TestFailedWriteDoesNotWedgeTheBlob(t *testing.T) {
	// Hand-assemble services so the fault store wraps every provider.
	inner := chunk.NewMemStore(nil)
	faulty := chunk.NewFaultStore(inner)
	mgr := provider.NewManager()
	mgr.Register(provider.New(0, faulty))
	svc := blob.Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	b, err := blob.Create(svc, 1, segtree.Geometry{Capacity: 1 << 16, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	// Healthy write 1.
	if _, err := b.Write(0, bytes.Repeat([]byte{1}, 2048), blob.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	// Write 2 fails in the chunk store.
	faulty.FailNextPuts(1)
	_, err = b.Write(512, bytes.Repeat([]byte{2}, 1024), blob.WriteOptions{})
	if !errors.Is(err, chunk.ErrInjected) {
		t.Fatalf("err = %v, want injected fault", err)
	}
	// Write 3 must succeed and publish (ticket 2 was retired).
	v3, err := b.Write(4096, bytes.Repeat([]byte{3}, 512), blob.WriteOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if v3 != 3 {
		t.Fatalf("third write got version %d, want 3", v3)
	}
	// The failed version reads like version 1.
	got, err := b.ReadAt(2, 0, 2048)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range got {
		if x != 1 {
			t.Fatalf("tombstone snapshot byte %d = %d, want 1", i, x)
		}
	}
	// Write 4 overlaps the failed write's range: its borrow chain may
	// reference version 2's tombstone nodes; reads must still work.
	if _, err := b.Write(600, bytes.Repeat([]byte{4}, 100), blob.WriteOptions{}); err != nil {
		t.Fatal(err)
	}
	final, err := b.ReadAt(4, 512, 512)
	if err != nil {
		t.Fatal(err)
	}
	for i, x := range final {
		want := byte(1)
		if i+512 >= 600 && i+512 < 700 {
			want = 4
		}
		if x != want {
			t.Fatalf("post-failure byte %d = %d, want %d", i+512, x, want)
		}
	}
}

// TestConcurrentFailuresAndSuccesses mixes failing and succeeding
// writers; the blob must stay consistent and every successful write
// must be readable.
func TestConcurrentFailuresAndSuccesses(t *testing.T) {
	inner := chunk.NewMemStore(nil)
	faulty := chunk.NewFaultStore(inner)
	mgr := provider.NewManager()
	mgr.Register(provider.New(0, faulty))
	svc := blob.Services{
		VM:   vmanager.New(iosim.CostModel{}),
		Meta: metadata.NewStore(2, iosim.CostModel{}),
		Data: provider.NewRouter(mgr),
	}
	b, err := blob.Create(svc, 1, segtree.Geometry{Capacity: 1 << 16, Page: 1024})
	if err != nil {
		t.Fatal(err)
	}
	faulty.FailNextPuts(8) // roughly a third of the puts will fail
	const writers = 12
	var failures, successes int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := bytes.Repeat([]byte{byte(w + 1)}, 700)
			_, err := b.Write(int64(w%3)*512, buf, blob.WriteOptions{})
			mu.Lock()
			if err != nil {
				failures++
			} else {
				successes++
			}
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	if failures == 0 {
		t.Fatal("expected some injected failures")
	}
	if successes == 0 {
		t.Fatal("expected some successes")
	}
	// The blob must be fully readable at every published version.
	info, err := b.Latest()
	if err != nil {
		t.Fatal(err)
	}
	if info.Version != writers {
		t.Fatalf("published %d, want %d (all tickets retired)", info.Version, writers)
	}
	for v := uint64(1); v <= info.Version; v++ {
		if _, err := b.ReadAt(v, 0, 2048); err != nil {
			t.Fatalf("version %d unreadable: %v", v, err)
		}
	}
}

// TestVerifierCatchesPosixInterleaving runs the non-atomic strawman
// repeatedly under total overlap; across many rounds it must produce
// at least one serializability violation, demonstrating that the
// verifier has teeth (and the motivating problem is real).
func TestVerifierCatchesPosixInterleaving(t *testing.T) {
	violations := 0
	for round := 0; round < 20 && violations == 0; round++ {
		spec := workload.OverlapSpec{
			Clients:         8,
			Regions:         24,
			RegionSize:      256,
			OverlapFraction: 1,
		}
		res, err := bench.RunOverlap(bench.PosixNoAtomic, fastEnv(), spec, bench.OverlapOptions{
			Iterations: 2, Verify: true,
		})
		if err != nil {
			t.Fatal(err)
		}
		if !res.Verified {
			violations++
		}
	}
	if violations == 0 {
		t.Skip("posix strawman survived 20 rounds (scheduling was kind); verifier teeth are covered by unit tests")
	}
	fmt.Println("posix-noatomic violations observed:", violations)
}
