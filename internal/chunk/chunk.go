// Package chunk implements the immutable chunk stores that hold blob
// data. Chunks are write-once: a writer stores the data of one update
// under a key derived from (blob, version ticket, index) and metadata
// then references sub-ranges of those chunks. Because chunks are never
// modified, readers need no synchronization against writers — the
// property the paper's versioning scheme relies on.
package chunk

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"

	"repro/internal/iosim"
)

// Key identifies one immutable chunk.
type Key struct {
	Blob    uint64 // blob identifier
	Version uint64 // write ticket that produced the chunk
	Index   uint32 // ordinal within that write
}

// String renders the key for diagnostics and disk file names.
func (k Key) String() string {
	return fmt.Sprintf("b%d-v%d-c%d", k.Blob, k.Version, k.Index)
}

// Ref points at a sub-range of a stored chunk. Metadata leaves hold
// Refs. Replicas, when non-empty, lists the data providers that hold a
// copy of the chunk (write-time placement): readers try those first
// and fail over across them when a provider is down. An empty set
// means placement is resolved by the provider router alone
// (pre-replication refs).
type Ref struct {
	Key      Key
	Offset   int64    // offset within the chunk
	Length   int64    // number of bytes referenced
	Replicas []uint32 // provider IDs holding a copy (may be empty)
}

// EqualData reports whether two refs reference the same bytes — the
// same sub-range of the same chunk. Replica placement is ignored: a
// repair that moves copies does not change the data a ref denotes.
func (r Ref) EqualData(o Ref) bool {
	return r.Key == o.Key && r.Offset == o.Offset && r.Length == o.Length
}

// Marshal encodes the ref: a fixed 36-byte base followed, when the ref
// carries a replica set, by a count byte and 4 bytes per replica.
// Replica-less refs keep the legacy fixed 36-byte form. The replica
// set is a read hint, so encodings keep only the first 255 entries
// rather than wrapping the count byte; readers holding a truncated
// hint fall back to the router's placement map.
func (r Ref) Marshal() []byte {
	if len(r.Replicas) > 255 {
		r.Replicas = r.Replicas[:255]
	}
	n := 36
	if len(r.Replicas) > 0 {
		n += 1 + 4*len(r.Replicas)
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b[0:], r.Key.Blob)
	binary.LittleEndian.PutUint64(b[8:], r.Key.Version)
	binary.LittleEndian.PutUint32(b[16:], r.Key.Index)
	binary.LittleEndian.PutUint64(b[20:], uint64(r.Offset))
	binary.LittleEndian.PutUint64(b[28:], uint64(r.Length))
	if len(r.Replicas) > 0 {
		b[36] = byte(len(r.Replicas))
		for i, id := range r.Replicas {
			binary.LittleEndian.PutUint32(b[37+4*i:], id)
		}
	}
	return b
}

// UnmarshalRef decodes a ref written by Marshal, accepting both the
// legacy 36-byte form and the replicated form.
func UnmarshalRef(b []byte) (Ref, error) {
	if len(b) < 36 {
		return Ref{}, fmt.Errorf("chunk: ref too short (%d bytes)", len(b))
	}
	r := Ref{
		Key: Key{
			Blob:    binary.LittleEndian.Uint64(b[0:]),
			Version: binary.LittleEndian.Uint64(b[8:]),
			Index:   binary.LittleEndian.Uint32(b[16:]),
		},
		Offset: int64(binary.LittleEndian.Uint64(b[20:])),
		Length: int64(binary.LittleEndian.Uint64(b[28:])),
	}
	if len(b) > 36 {
		n := int(b[36])
		if len(b) < 37+4*n {
			return Ref{}, fmt.Errorf("chunk: ref replica set truncated (%d bytes for %d replicas)", len(b), n)
		}
		r.Replicas = make([]uint32, n)
		for i := 0; i < n; i++ {
			r.Replicas[i] = binary.LittleEndian.Uint32(b[37+4*i:])
		}
	}
	return r, nil
}

// ErrNotFound is returned when a chunk key is unknown.
var ErrNotFound = errors.New("chunk: not found")

// ErrExists is returned when a chunk key is stored twice; chunks are
// immutable so double stores indicate a protocol violation.
var ErrExists = errors.New("chunk: already exists")

// Store is the provider-side chunk repository. Chunks are immutable
// while stored, but not immortal: Delete is the space-reclamation path
// the version-lifecycle garbage collector drives once no retained
// snapshot references a chunk (see provider.Router.DeleteReplicas).
type Store interface {
	// Put stores an immutable chunk. Storing the same key twice fails
	// with ErrExists.
	Put(key Key, data []byte) error
	// Get returns length bytes starting at off within the chunk.
	Get(key Key, off, length int64) ([]byte, error)
	// Len returns the stored chunk's size, or ErrNotFound.
	Len(key Key) (int64, error)
	// Delete removes a stored chunk; deleting an absent key fails with
	// ErrNotFound. Only the garbage collector may call this, and only
	// for chunks no retained version references.
	Delete(key Key) error
	// Count returns the number of chunks held.
	Count() int
	// Usage reports the chunks held and their total payload bytes —
	// the accounting behind per-provider space reporting (bsctl usage)
	// and reclamation verification.
	Usage() (chunks int, bytes int64)
}

// MemStore is an in-memory chunk store metered by an iosim.Meter.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[Key][]byte
	bytes  int64
	meter  *iosim.Meter
}

// NewMemStore builds an in-memory store. meter may be nil for unmetered
// stores (unit tests).
func NewMemStore(meter *iosim.Meter) *MemStore {
	return &MemStore{chunks: make(map[Key][]byte), meter: meter}
}

// Put implements Store.
func (s *MemStore) Put(key Key, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	_, dup := s.chunks[key]
	if !dup {
		s.chunks[key] = cp
		s.bytes += int64(len(cp))
	}
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	if s.meter != nil {
		s.meter.Charge(int64(len(data)))
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key Key, off, length int64) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.chunks[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, len(data))
	}
	out := make([]byte, length)
	copy(out, data[off:off+length])
	if s.meter != nil {
		s.meter.Charge(length)
	}
	return out, nil
}

// Len implements Store.
func (s *MemStore) Len(key Key) (int64, error) {
	s.mu.RLock()
	data, ok := s.chunks[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key Key) error {
	s.mu.Lock()
	data, ok := s.chunks[key]
	if ok {
		delete(s.chunks, key)
		s.bytes -= int64(len(data))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if s.meter != nil {
		s.meter.Charge(0)
	}
	return nil
}

// Count implements Store.
func (s *MemStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Usage implements Store.
func (s *MemStore) Usage() (int, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks), s.bytes
}

// DiskStore persists each chunk as one file under a directory. It is the
// durable counterpart of MemStore and shares its metering semantics.
type DiskStore struct {
	dir   string
	mu    sync.RWMutex
	known map[Key]int64 // size index to avoid stat storms
	bytes int64
	meter *iosim.Meter
}

// NewDiskStore creates (if needed) the directory and opens a store.
func NewDiskStore(dir string, meter *iosim.Meter) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: create dir: %w", err)
	}
	s := &DiskStore{dir: dir, known: make(map[Key]int64), meter: meter}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("chunk: scan dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		var blob, ver uint64
		var idx uint32
		if _, err := fmt.Sscanf(ent.Name(), "b%d-v%d-c%d", &blob, &ver, &idx); err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		s.known[Key{Blob: blob, Version: ver, Index: idx}] = info.Size()
		s.bytes += info.Size()
	}
	return s, nil
}

func (s *DiskStore) path(key Key) string {
	return filepath.Join(s.dir, key.String())
}

// Put implements Store.
func (s *DiskStore) Put(key Key, data []byte) error {
	s.mu.Lock()
	if _, dup := s.known[key]; dup {
		s.mu.Unlock()
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	// Reserve the key before releasing the lock so concurrent writers
	// of the same key fail fast; the file write happens outside.
	s.known[key] = int64(len(data))
	s.bytes += int64(len(data))
	s.mu.Unlock()
	if err := os.WriteFile(s.path(key), data, 0o644); err != nil {
		s.mu.Lock()
		delete(s.known, key)
		s.bytes -= int64(len(data))
		s.mu.Unlock()
		return fmt.Errorf("chunk: write %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(int64(len(data)))
	}
	return nil
}

// Get implements Store.
func (s *DiskStore) Get(key Key, off, length int64) ([]byte, error) {
	s.mu.RLock()
	size, ok := s.known[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > size {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, size)
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("chunk: open %s: %w", key, err)
	}
	defer f.Close()
	out := make([]byte, length)
	if _, err := f.ReadAt(out, off); err != nil {
		return nil, fmt.Errorf("chunk: read %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(length)
	}
	return out, nil
}

// Len implements Store.
func (s *DiskStore) Len(key Key) (int64, error) {
	s.mu.RLock()
	size, ok := s.known[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return size, nil
}

// Delete implements Store. The index entry is dropped first, so the
// chunk is logically gone even if the file removal fails (the orphan
// file is retried as ErrNotFound, i.e. success, on the next pass).
func (s *DiskStore) Delete(key Key) error {
	s.mu.Lock()
	size, ok := s.known[key]
	if ok {
		delete(s.known, key)
		s.bytes -= size
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("chunk: delete %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(0)
	}
	return nil
}

// Count implements Store.
func (s *DiskStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.known)
}

// Usage implements Store.
func (s *DiskStore) Usage() (int, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.known), s.bytes
}
