// Package chunk implements the immutable chunk stores that hold blob
// data. Chunks are write-once: a writer stores the data of one update
// under a key derived from (blob, version ticket, index) and metadata
// then references sub-ranges of those chunks. Because chunks are never
// modified, readers need no synchronization against writers — the
// property the paper's versioning scheme relies on.
package chunk

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"sync"

	"repro/internal/iosim"
)

// Key identifies one immutable chunk.
type Key struct {
	Blob    uint64 // blob identifier
	Version uint64 // write ticket that produced the chunk
	Index   uint32 // ordinal within that write
}

// String renders the key for diagnostics and disk file names.
func (k Key) String() string {
	return fmt.Sprintf("b%d-v%d-c%d", k.Blob, k.Version, k.Index)
}

// Ref points at a sub-range of a stored chunk. Metadata leaves hold
// Refs. Replicas, when non-empty, lists the data providers that hold a
// copy of the chunk (write-time placement): readers try those first
// and fail over across them when a provider is down. An empty set
// means placement is resolved by the provider router alone
// (pre-replication refs).
type Ref struct {
	Key      Key
	Offset   int64    // offset within the chunk
	Length   int64    // number of bytes referenced
	Replicas []uint32 // provider IDs holding a copy (may be empty)
}

// EqualData reports whether two refs reference the same bytes — the
// same sub-range of the same chunk. Replica placement is ignored: a
// repair that moves copies does not change the data a ref denotes.
func (r Ref) EqualData(o Ref) bool {
	return r.Key == o.Key && r.Offset == o.Offset && r.Length == o.Length
}

// Marshal encodes the ref: a fixed 36-byte base followed, when the ref
// carries a replica set, by a count byte and 4 bytes per replica.
// Replica-less refs keep the legacy fixed 36-byte form. The replica
// set is a read hint, so encodings keep only the first 255 entries
// rather than wrapping the count byte; readers holding a truncated
// hint fall back to the router's placement map.
func (r Ref) Marshal() []byte {
	if len(r.Replicas) > 255 {
		r.Replicas = r.Replicas[:255]
	}
	n := 36
	if len(r.Replicas) > 0 {
		n += 1 + 4*len(r.Replicas)
	}
	b := make([]byte, n)
	binary.LittleEndian.PutUint64(b[0:], r.Key.Blob)
	binary.LittleEndian.PutUint64(b[8:], r.Key.Version)
	binary.LittleEndian.PutUint32(b[16:], r.Key.Index)
	binary.LittleEndian.PutUint64(b[20:], uint64(r.Offset))
	binary.LittleEndian.PutUint64(b[28:], uint64(r.Length))
	if len(r.Replicas) > 0 {
		b[36] = byte(len(r.Replicas))
		for i, id := range r.Replicas {
			binary.LittleEndian.PutUint32(b[37+4*i:], id)
		}
	}
	return b
}

// UnmarshalRef decodes a ref written by Marshal, accepting both the
// legacy 36-byte form and the replicated form.
func UnmarshalRef(b []byte) (Ref, error) {
	if len(b) < 36 {
		return Ref{}, fmt.Errorf("chunk: ref too short (%d bytes)", len(b))
	}
	r := Ref{
		Key: Key{
			Blob:    binary.LittleEndian.Uint64(b[0:]),
			Version: binary.LittleEndian.Uint64(b[8:]),
			Index:   binary.LittleEndian.Uint32(b[16:]),
		},
		Offset: int64(binary.LittleEndian.Uint64(b[20:])),
		Length: int64(binary.LittleEndian.Uint64(b[28:])),
	}
	if len(b) > 36 {
		n := int(b[36])
		if len(b) < 37+4*n {
			return Ref{}, fmt.Errorf("chunk: ref replica set truncated (%d bytes for %d replicas)", len(b), n)
		}
		r.Replicas = make([]uint32, n)
		for i := 0; i < n; i++ {
			r.Replicas[i] = binary.LittleEndian.Uint32(b[37+4*i:])
		}
	}
	return r, nil
}

// ErrNotFound is returned when a chunk key is unknown.
var ErrNotFound = errors.New("chunk: not found")

// ErrExists is returned when a chunk key is stored twice; chunks are
// immutable so double stores indicate a protocol violation.
var ErrExists = errors.New("chunk: already exists")

// Store is the provider-side chunk repository. Chunks are immutable
// while stored, but not immortal: Delete is the space-reclamation path
// the version-lifecycle garbage collector drives once no retained
// snapshot references a chunk (see provider.Router.DeleteReplicas).
type Store interface {
	// Put stores an immutable chunk. Storing the same key twice fails
	// with ErrExists.
	Put(key Key, data []byte) error
	// Get returns length bytes starting at off within the chunk.
	Get(key Key, off, length int64) ([]byte, error)
	// Len returns the stored chunk's size, or ErrNotFound.
	Len(key Key) (int64, error)
	// Delete removes a stored chunk; deleting an absent key fails with
	// ErrNotFound. Only the garbage collector may call this, and only
	// for chunks no retained version references.
	Delete(key Key) error
	// Count returns the number of chunks held.
	Count() int
	// Usage reports the chunks held and their total payload bytes —
	// the accounting behind per-provider space reporting (bsctl usage)
	// and reclamation verification.
	Usage() (chunks int, bytes int64)
	// PutFromReader stores an immutable chunk of exactly size bytes
	// streamed from r, without requiring the caller to materialize the
	// whole payload. The write is atomic with respect to visibility: a
	// short read or mid-stream error must leave the key absent
	// (ErrNotFound from Len/Get), never a truncated chunk. Storing an
	// existing key fails with ErrExists.
	PutFromReader(key Key, size int64, r io.Reader) error
	// OpenReader returns a streaming reader over length bytes starting
	// at off within the chunk, or ErrNotFound. The caller must Close
	// it. Implementations serve from their native medium without an
	// intermediate copy where possible (DiskStore hands out the chunk
	// file itself so socket writers can splice/sendfile from it).
	OpenReader(key Key, off, length int64) (io.ReadCloser, error)
}

// MemStore is an in-memory chunk store metered by an iosim.Meter.
type MemStore struct {
	mu     sync.RWMutex
	chunks map[Key][]byte
	bytes  int64
	meter  *iosim.Meter
}

// NewMemStore builds an in-memory store. meter may be nil for unmetered
// stores (unit tests).
func NewMemStore(meter *iosim.Meter) *MemStore {
	return &MemStore{chunks: make(map[Key][]byte), meter: meter}
}

// Put implements Store.
func (s *MemStore) Put(key Key, data []byte) error {
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	_, dup := s.chunks[key]
	if !dup {
		s.chunks[key] = cp
		s.bytes += int64(len(cp))
	}
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	if s.meter != nil {
		s.meter.Charge(int64(len(data)))
	}
	return nil
}

// Get implements Store.
func (s *MemStore) Get(key Key, off, length int64) ([]byte, error) {
	s.mu.RLock()
	data, ok := s.chunks[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, len(data))
	}
	out := make([]byte, length)
	copy(out, data[off:off+length])
	if s.meter != nil {
		s.meter.Charge(length)
	}
	return out, nil
}

// Len implements Store.
func (s *MemStore) Len(key Key) (int64, error) {
	s.mu.RLock()
	data, ok := s.chunks[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return int64(len(data)), nil
}

// Delete implements Store.
func (s *MemStore) Delete(key Key) error {
	s.mu.Lock()
	data, ok := s.chunks[key]
	if ok {
		delete(s.chunks, key)
		s.bytes -= int64(len(data))
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if s.meter != nil {
		s.meter.Charge(0)
	}
	return nil
}

// Count implements Store.
func (s *MemStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks)
}

// Usage implements Store.
func (s *MemStore) Usage() (int, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.chunks), s.bytes
}

// PutFromReader implements Store. The payload is buffered fully before
// the key becomes visible, so a short read never leaves a torn chunk.
func (s *MemStore) PutFromReader(key Key, size int64, r io.Reader) error {
	if size < 0 {
		return fmt.Errorf("chunk: negative size %d for %s", size, key)
	}
	s.mu.RLock()
	_, dup := s.chunks[key]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	buf := make([]byte, size)
	if _, err := io.ReadFull(r, buf); err != nil {
		return fmt.Errorf("chunk: stream %s: %w", key, err)
	}
	s.mu.Lock()
	_, dup = s.chunks[key]
	if !dup {
		s.chunks[key] = buf
		s.bytes += size
	}
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	if s.meter != nil {
		s.meter.Charge(size)
	}
	return nil
}

// OpenReader implements Store. Stored chunks are immutable, so the
// reader serves the stored slice directly with no copy; a concurrent
// Delete only unlinks the key, it never mutates the bytes.
func (s *MemStore) OpenReader(key Key, off, length int64) (io.ReadCloser, error) {
	s.mu.RLock()
	data, ok := s.chunks[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > int64(len(data)) {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, len(data))
	}
	if s.meter != nil {
		s.meter.Charge(length)
	}
	return io.NopCloser(bytes.NewReader(data[off : off+length])), nil
}

// DiskStore persists each chunk as one file under a directory. It is the
// durable counterpart of MemStore and shares its metering semantics.
type DiskStore struct {
	dir   string
	sync  bool
	mu    sync.RWMutex
	known map[Key]int64 // size index to avoid stat storms
	bytes int64
	meter *iosim.Meter
}

// NewDiskStore creates (if needed) the directory and opens a store.
func NewDiskStore(dir string, meter *iosim.Meter) (*DiskStore, error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("chunk: create dir: %w", err)
	}
	s := &DiskStore{dir: dir, known: make(map[Key]int64), meter: meter}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("chunk: scan dir: %w", err)
	}
	for _, ent := range entries {
		if ent.IsDir() {
			continue
		}
		// Leftover temp files are the debris of a crash between write
		// and rename; the chunk was never visible, so remove the file
		// rather than index it.
		if strings.HasPrefix(ent.Name(), tmpPrefix) {
			os.Remove(filepath.Join(dir, ent.Name()))
			continue
		}
		var blob, ver uint64
		var idx uint32
		if _, err := fmt.Sscanf(ent.Name(), "b%d-v%d-c%d", &blob, &ver, &idx); err != nil {
			continue
		}
		info, err := ent.Info()
		if err != nil {
			continue
		}
		s.known[Key{Blob: blob, Version: ver, Index: idx}] = info.Size()
		s.bytes += info.Size()
	}
	return s, nil
}

func (s *DiskStore) path(key Key) string {
	return filepath.Join(s.dir, key.String())
}

// tmpPrefix marks in-flight chunk files; NewDiskStore skips and
// removes them during the rescan.
const tmpPrefix = ".tmp-"

// reserve claims key in the size index so concurrent writers of the
// same key fail fast, returning false on a duplicate.
func (s *DiskStore) reserve(key Key, size int64) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, dup := s.known[key]; dup {
		return false
	}
	s.known[key] = size
	s.bytes += size
	return true
}

// unreserve rolls back a failed reservation.
func (s *DiskStore) unreserve(key Key, size int64) {
	s.mu.Lock()
	delete(s.known, key)
	s.bytes -= size
	s.mu.Unlock()
}

// SetSync makes every chunk write fsync before the rename. The rename
// alone already guarantees a reader never sees a truncated chunk (the
// crash-safety contract); sync additionally makes the bytes survive a
// power loss, at roughly an order of magnitude in write throughput.
// Off by default; enabled by the factory's disk://path?sync=1 form.
func (s *DiskStore) SetSync(on bool) { s.sync = on }

// writeChunk streams size bytes from r into a temp file in the store
// directory and renames it into place — the visible chunk file either
// does not exist or is complete, so a crash mid-write never leaves a
// truncated chunk a later Get would serve.
func (s *DiskStore) writeChunk(key Key, size int64, r io.Reader) error {
	f, err := os.CreateTemp(s.dir, tmpPrefix+key.String()+"-*")
	if err != nil {
		return fmt.Errorf("chunk: create temp for %s: %w", key, err)
	}
	tmp := f.Name()
	n, err := io.Copy(f, io.LimitReader(r, size))
	if err == nil && n < size {
		err = io.ErrUnexpectedEOF
	}
	if err == nil && s.sync {
		err = f.Sync()
	}
	if cerr := f.Close(); err == nil {
		err = cerr
	}
	if err == nil {
		err = os.Rename(tmp, s.path(key))
	}
	if err != nil {
		os.Remove(tmp)
		return fmt.Errorf("chunk: write %s: %w", key, err)
	}
	return nil
}

// Put implements Store. The file is written to a temp name and renamed
// into place, so a crash mid-write never leaves a truncated chunk.
func (s *DiskStore) Put(key Key, data []byte) error {
	return s.PutFromReader(key, int64(len(data)), bytes.NewReader(data))
}

// PutFromReader implements Store, streaming the payload straight to
// disk through the same temp-file + rename protocol as Put.
func (s *DiskStore) PutFromReader(key Key, size int64, r io.Reader) error {
	if size < 0 {
		return fmt.Errorf("chunk: negative size %d for %s", size, key)
	}
	if !s.reserve(key, size) {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	if err := s.writeChunk(key, size, r); err != nil {
		s.unreserve(key, size)
		return err
	}
	if s.meter != nil {
		s.meter.Charge(size)
	}
	return nil
}

// fileSection is an open chunk file restricted to a sub-range. For
// full-chunk reads OpenReader returns the *os.File itself so socket
// writers can sendfile from it; ranged reads go through a SectionReader
// over the same descriptor.
type fileSection struct {
	*io.SectionReader
	f *os.File
}

func (fs *fileSection) Close() error { return fs.f.Close() }

// OpenReader implements Store. The chunk file is served directly — no
// intermediate buffer — which lets net connections splice from it.
func (s *DiskStore) OpenReader(key Key, off, length int64) (io.ReadCloser, error) {
	s.mu.RLock()
	size, ok := s.known[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > size {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, size)
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("chunk: open %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(length)
	}
	if off == 0 && length == size {
		return f, nil
	}
	return &fileSection{SectionReader: io.NewSectionReader(f, off, length), f: f}, nil
}

// Get implements Store.
func (s *DiskStore) Get(key Key, off, length int64) ([]byte, error) {
	s.mu.RLock()
	size, ok := s.known[key]
	s.mu.RUnlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > size {
		return nil, fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, size)
	}
	f, err := os.Open(s.path(key))
	if err != nil {
		return nil, fmt.Errorf("chunk: open %s: %w", key, err)
	}
	defer f.Close()
	out := make([]byte, length)
	if _, err := f.ReadAt(out, off); err != nil {
		return nil, fmt.Errorf("chunk: read %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(length)
	}
	return out, nil
}

// Len implements Store.
func (s *DiskStore) Len(key Key) (int64, error) {
	s.mu.RLock()
	size, ok := s.known[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return size, nil
}

// Delete implements Store. The index entry is dropped first, so the
// chunk is logically gone even if the file removal fails (the orphan
// file is retried as ErrNotFound, i.e. success, on the next pass).
func (s *DiskStore) Delete(key Key) error {
	s.mu.Lock()
	size, ok := s.known[key]
	if ok {
		delete(s.known, key)
		s.bytes -= size
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if err := os.Remove(s.path(key)); err != nil && !os.IsNotExist(err) {
		return fmt.Errorf("chunk: delete %s: %w", key, err)
	}
	if s.meter != nil {
		s.meter.Charge(0)
	}
	return nil
}

// Count implements Store.
func (s *DiskStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.known)
}

// Usage implements Store.
func (s *DiskStore) Usage() (int, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.known), s.bytes
}
