package chunk

import (
	"bytes"
	"fmt"
	"io"
	"sync"
)

// NullStore discards chunk payloads while keeping the full accounting
// and error-identity surface of a real store: keys, sizes, ErrExists
// and ErrNotFound all behave normally, but Get and OpenReader serve
// zeros. It exists for pure control-plane benchmarks (E17's null
// backend), where data-path cost must be removed from the measurement
// without changing any protocol behavior.
type NullStore struct {
	mu    sync.RWMutex
	sizes map[Key]int64
	bytes int64
}

// NewNullStore builds a discard store. It takes no meter: NullStore
// models zero-cost I/O, so charging a simulated device for it would
// defeat its purpose.
func NewNullStore() *NullStore {
	return &NullStore{sizes: make(map[Key]int64)}
}

var _ Store = (*NullStore)(nil)

// Put implements Store, recording only the size.
func (s *NullStore) Put(key Key, data []byte) error {
	return s.record(key, int64(len(data)))
}

// PutFromReader implements Store, draining the reader (so upstream
// pipelines observe real transfer mechanics) and recording the size.
func (s *NullStore) PutFromReader(key Key, size int64, r io.Reader) error {
	if size < 0 {
		return fmt.Errorf("chunk: negative size %d for %s", size, key)
	}
	s.mu.RLock()
	_, dup := s.sizes[key]
	s.mu.RUnlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	n, err := io.Copy(io.Discard, io.LimitReader(r, size))
	if err != nil {
		return fmt.Errorf("chunk: stream %s: %w", key, err)
	}
	if n < size {
		return fmt.Errorf("chunk: stream %s: %w", key, io.ErrUnexpectedEOF)
	}
	return s.record(key, size)
}

func (s *NullStore) record(key Key, size int64) error {
	s.mu.Lock()
	_, dup := s.sizes[key]
	if !dup {
		s.sizes[key] = size
		s.bytes += size
	}
	s.mu.Unlock()
	if dup {
		return fmt.Errorf("%w: %s", ErrExists, key)
	}
	return nil
}

// Get implements Store, serving zeros of the requested range.
func (s *NullStore) Get(key Key, off, length int64) ([]byte, error) {
	if err := s.check(key, off, length); err != nil {
		return nil, err
	}
	return make([]byte, length), nil
}

// OpenReader implements Store, streaming zeros of the requested range.
func (s *NullStore) OpenReader(key Key, off, length int64) (io.ReadCloser, error) {
	if err := s.check(key, off, length); err != nil {
		return nil, err
	}
	return io.NopCloser(bytes.NewReader(make([]byte, length))), nil
}

func (s *NullStore) check(key Key, off, length int64) error {
	s.mu.RLock()
	size, ok := s.sizes[key]
	s.mu.RUnlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	if off < 0 || length < 0 || off+length > size {
		return fmt.Errorf("chunk: range [%d,%d) out of bounds for %s (len %d)", off, off+length, key, size)
	}
	return nil
}

// Len implements Store.
func (s *NullStore) Len(key Key) (int64, error) {
	s.mu.RLock()
	size, ok := s.sizes[key]
	s.mu.RUnlock()
	if !ok {
		return 0, fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return size, nil
}

// Delete implements Store.
func (s *NullStore) Delete(key Key) error {
	s.mu.Lock()
	size, ok := s.sizes[key]
	if ok {
		delete(s.sizes, key)
		s.bytes -= size
	}
	s.mu.Unlock()
	if !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, key)
	}
	return nil
}

// Count implements Store.
func (s *NullStore) Count() int {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes)
}

// Usage implements Store.
func (s *NullStore) Usage() (int, int64) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	return len(s.sizes), s.bytes
}
