// Backend factory: chunk stores selected by URL, teranode-blob-server
// style, so deployments pick a medium with configuration instead of
// code. Supported schemes:
//
//	mem://                in-memory store (the default)
//	disk:///path          one file per chunk under /path
//	disk:///path?sync=1   fsync every chunk before publishing it
//	null://               discard payloads, keep accounting (bench-only)
//	fault+mem://          any scheme wrapped in a FaultStore
//	fault+disk:///p       (fault injection for tests and torture runs)
package chunk

import (
	"fmt"
	"net/url"
	"strings"

	"repro/internal/iosim"
)

// OpenStore builds a chunk store from its URL. meter may be nil; it is
// ignored by schemes with no metered medium (null).
func OpenStore(rawURL string, meter *iosim.Meter) (Store, error) {
	scheme, rest, query, fault := splitScheme(rawURL)
	var inner Store
	var err error
	switch scheme {
	case "mem":
		inner = NewMemStore(meter)
	case "disk":
		if rest == "" {
			return nil, fmt.Errorf("chunk: disk store URL %q has no path", rawURL)
		}
		ds, err := NewDiskStore(rest, meter)
		if err != nil {
			return nil, err
		}
		ds.SetSync(query.Get("sync") == "1")
		inner = ds
	case "null":
		inner = NewNullStore()
	default:
		return nil, fmt.Errorf("chunk: unknown store scheme %q in %q", scheme, rawURL)
	}
	if err != nil {
		return nil, err
	}
	if fault {
		return NewFaultStore(inner), nil
	}
	return inner, nil
}

// ForProvider derives the store URL for one provider of a pool from a
// pool-level URL: path-based schemes get a per-provider subdirectory
// so N providers of one deployment never collide on disk; path-less
// schemes are returned unchanged (each OpenStore call builds a fresh
// independent store anyway). Query options are preserved.
func ForProvider(rawURL string, id uint32) string {
	scheme, rest, query, fault := splitScheme(rawURL)
	if scheme != "disk" || rest == "" {
		return rawURL
	}
	prefix := scheme
	if fault {
		prefix = "fault+" + scheme
	}
	suffix := ""
	if len(query) > 0 {
		suffix = "?" + query.Encode()
	}
	return fmt.Sprintf("%s://%s/p%d%s", prefix, rest, id, suffix)
}

// ValidStoreURL reports whether OpenStore would accept the URL,
// without touching the filesystem — configuration validation.
func ValidStoreURL(rawURL string) error {
	scheme, rest, _, _ := splitScheme(rawURL)
	switch scheme {
	case "mem", "null":
		return nil
	case "disk":
		if rest == "" {
			return fmt.Errorf("chunk: disk store URL %q has no path", rawURL)
		}
		return nil
	default:
		return fmt.Errorf("chunk: unknown store scheme %q in %q", scheme, rawURL)
	}
}

// splitScheme parses a store URL into (scheme, path, query,
// faultWrapped). The fault+ prefix is peeled first so url.Parse sees a
// plain scheme.
func splitScheme(rawURL string) (scheme, path string, query url.Values, fault bool) {
	if strings.HasPrefix(rawURL, "fault+") {
		fault = true
		rawURL = strings.TrimPrefix(rawURL, "fault+")
	}
	u, err := url.Parse(rawURL)
	if err != nil {
		return "", "", nil, fault
	}
	// disk:///var/chunks parses with empty Host and Path=/var/chunks;
	// disk://relative/dir parses with Host=relative — rejoin them so
	// both absolute and relative paths work.
	p := u.Path
	if u.Host != "" {
		p = u.Host + p
	}
	return u.Scheme, p, u.Query(), fault
}
