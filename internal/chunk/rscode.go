// Reed-Solomon erasure coding over GF(2^8) for chunk fragments. A
// chunk of S bytes is split into k data shards of ceil(S/k) bytes
// (the last zero-padded) and extended with m parity shards; any k of
// the k+m shards reconstruct the original bytes. The code is
// systematic — data shards hold the chunk bytes verbatim — so intact
// reads never pay a decode. Pure Go, table-driven, no dependencies.
package chunk

import "fmt"

// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11D) and
// generator 2 — the field used by virtually every RS storage code.
var (
	gfExp [512]byte      // exp table doubled so mul needs no mod
	gfLog [256]int       // log table; gfLog[0] unused
	rsMul [256][256]byte // full multiplication table for the hot loop
)

func init() {
	x := byte(1)
	for i := 0; i < 255; i++ {
		gfExp[i] = x
		gfLog[x] = i
		// multiply x by the generator 2 in GF(2^8)
		if x&0x80 != 0 {
			x = (x << 1) ^ 0x1D
		} else {
			x <<= 1
		}
	}
	for i := 255; i < 512; i++ {
		gfExp[i] = gfExp[i-255]
	}
	for a := 1; a < 256; a++ {
		for b := 1; b < 256; b++ {
			rsMul[a][b] = gfExp[gfLog[a]+gfLog[b]]
		}
	}
}

func gfMul(a, b byte) byte { return rsMul[a][b] }

func gfInv(a byte) byte {
	if a == 0 {
		panic("chunk: GF(256) inverse of zero")
	}
	return gfExp[255-gfLog[a]]
}

// RSCode is a systematic k+m Reed-Solomon code. The generator matrix
// is [I_k ; C] where C is the m×k Cauchy matrix C[i][j] =
// 1/((k+i) XOR j): every square submatrix of a Cauchy matrix is
// invertible, so any k of the k+m rows — any k surviving shards —
// suffice to reconstruct.
type RSCode struct {
	K, M   int
	parity [][]byte // m rows × k cols of the generator's parity half
}

// NewRSCode builds a k data + m parity code. The Cauchy construction
// needs k+m distinct nonzero field elements of the form (k+i)^j, which
// bounds k+m at 256.
func NewRSCode(k, m int) (*RSCode, error) {
	if k < 1 || m < 1 || k+m > 256 {
		return nil, fmt.Errorf("chunk: invalid RS code %d+%d (need k>=1, m>=1, k+m<=256)", k, m)
	}
	c := &RSCode{K: k, M: m, parity: make([][]byte, m)}
	for i := 0; i < m; i++ {
		c.parity[i] = make([]byte, k)
		for j := 0; j < k; j++ {
			c.parity[i][j] = gfInv(byte(k+i) ^ byte(j))
		}
	}
	return c, nil
}

// ShardSize is the per-fragment size for a chunk of size bytes: the
// chunk is padded up to a multiple of K so all shards are equal.
func (c *RSCode) ShardSize(size int64) int64 {
	if size <= 0 {
		return 0
	}
	return (size + int64(c.K) - 1) / int64(c.K)
}

// Encode splits data into K shards (last one zero-padded) and appends
// M parity shards; the returned slice has K+M entries of equal length.
// The data shards alias the input where possible; only the padded tail
// and the parity rows allocate.
func (c *RSCode) Encode(data []byte) [][]byte {
	ss := c.ShardSize(int64(len(data)))
	shards := make([][]byte, c.K+c.M)
	for i := 0; i < c.K; i++ {
		lo := int64(i) * ss
		hi := lo + ss
		switch {
		case lo >= int64(len(data)):
			shards[i] = make([]byte, ss)
		case hi > int64(len(data)):
			s := make([]byte, ss)
			copy(s, data[lo:])
			shards[i] = s
		default:
			shards[i] = data[lo:hi]
		}
	}
	for i := 0; i < c.M; i++ {
		p := make([]byte, ss)
		row := c.parity[i]
		for j := 0; j < c.K; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			mul := &rsMul[coef]
			src := shards[j]
			for b := range p {
				p[b] ^= mul[src[b]]
			}
		}
		shards[c.K+i] = p
	}
	return shards
}

// generatorRow returns row r (0 ≤ r < K+M) of the generator matrix.
func (c *RSCode) generatorRow(r int) []byte {
	row := make([]byte, c.K)
	if r < c.K {
		row[r] = 1
	} else {
		copy(row, c.parity[r-c.K])
	}
	return row
}

// Reconstruct fills in the nil entries of shards in place. shards must
// have K+M entries; non-nil entries must all share one length and hold
// the shard for their index. At least K entries must be present. On
// return every entry is non-nil and byte-identical to what Encode
// produced.
func (c *RSCode) Reconstruct(shards [][]byte) error {
	if len(shards) != c.K+c.M {
		return fmt.Errorf("chunk: RS reconstruct wants %d shards, got %d", c.K+c.M, len(shards))
	}
	have := make([]int, 0, c.K)
	ss := -1
	for i, s := range shards {
		if s == nil {
			continue
		}
		if ss == -1 {
			ss = len(s)
		} else if len(s) != ss {
			return fmt.Errorf("chunk: RS shard %d has %d bytes, want %d", i, len(s), ss)
		}
		if len(have) < c.K {
			have = append(have, i)
		}
	}
	if len(have) < c.K {
		return fmt.Errorf("chunk: RS reconstruct needs %d shards, only %d present", c.K, len(have))
	}
	dataMissing := false
	for i := 0; i < c.K; i++ {
		if shards[i] == nil {
			dataMissing = true
			break
		}
	}
	if dataMissing {
		// Solve for the data shards: the k present shards relate to
		// them by the k×k submatrix of generator rows, which the
		// Cauchy construction guarantees invertible.
		mat := make([][]byte, c.K)
		for r, idx := range have {
			mat[r] = c.generatorRow(idx)
		}
		inv, err := gfInvertMatrix(mat)
		if err != nil {
			return err
		}
		data := make([][]byte, c.K)
		for i := 0; i < c.K; i++ {
			if shards[i] != nil {
				data[i] = shards[i]
				continue
			}
			out := make([]byte, ss)
			for r, idx := range have {
				coef := inv[i][r]
				if coef == 0 {
					continue
				}
				mul := &rsMul[coef]
				src := shards[idx]
				for b := 0; b < ss; b++ {
					out[b] ^= mul[src[b]]
				}
			}
			data[i] = out
		}
		for i := 0; i < c.K; i++ {
			shards[i] = data[i]
		}
	}
	// With all data shards in hand, missing parity is a re-encode.
	for i := 0; i < c.M; i++ {
		if shards[c.K+i] != nil {
			continue
		}
		p := make([]byte, ss)
		row := c.parity[i]
		for j := 0; j < c.K; j++ {
			coef := row[j]
			if coef == 0 {
				continue
			}
			mul := &rsMul[coef]
			src := shards[j]
			for b := 0; b < ss; b++ {
				p[b] ^= mul[src[b]]
			}
		}
		shards[c.K+i] = p
	}
	return nil
}

// Join concatenates the K data shards and trims padding to size bytes
// — the inverse of Encode for an original chunk of that size.
func (c *RSCode) Join(shards [][]byte, size int64) []byte {
	out := make([]byte, 0, size)
	for i := 0; i < c.K && int64(len(out)) < size; i++ {
		out = append(out, shards[i]...)
	}
	if int64(len(out)) > size {
		out = out[:size]
	}
	return out
}

// gfInvertMatrix inverts a square matrix over GF(2^8) by Gauss-Jordan
// elimination. The input is consumed.
func gfInvertMatrix(mat [][]byte) ([][]byte, error) {
	n := len(mat)
	inv := make([][]byte, n)
	for i := range inv {
		inv[i] = make([]byte, n)
		inv[i][i] = 1
	}
	for col := 0; col < n; col++ {
		pivot := -1
		for r := col; r < n; r++ {
			if mat[r][col] != 0 {
				pivot = r
				break
			}
		}
		if pivot == -1 {
			return nil, fmt.Errorf("chunk: RS submatrix singular at column %d", col)
		}
		mat[col], mat[pivot] = mat[pivot], mat[col]
		inv[col], inv[pivot] = inv[pivot], inv[col]
		if p := mat[col][col]; p != 1 {
			pi := gfInv(p)
			for j := 0; j < n; j++ {
				mat[col][j] = gfMul(mat[col][j], pi)
				inv[col][j] = gfMul(inv[col][j], pi)
			}
		}
		for r := 0; r < n; r++ {
			if r == col || mat[r][col] == 0 {
				continue
			}
			f := mat[r][col]
			for j := 0; j < n; j++ {
				mat[r][j] ^= gfMul(f, mat[col][j])
				inv[r][j] ^= gfMul(f, inv[col][j])
			}
		}
	}
	return inv, nil
}
