package chunk

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/iosim"
)

func stores(t *testing.T) map[string]Store {
	t.Helper()
	disk, err := NewDiskStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	return map[string]Store{
		"mem":  NewMemStore(nil),
		"disk": disk,
	}
}

func TestStorePutGet(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := Key{Blob: 1, Version: 7, Index: 3}
			data := []byte("hello chunk store")
			if err := s.Put(key, data); err != nil {
				t.Fatal(err)
			}
			got, err := s.Get(key, 0, int64(len(data)))
			if err != nil {
				t.Fatal(err)
			}
			if !bytes.Equal(got, data) {
				t.Fatalf("Get = %q, want %q", got, data)
			}
			part, err := s.Get(key, 6, 5)
			if err != nil {
				t.Fatal(err)
			}
			if string(part) != "chunk" {
				t.Fatalf("partial Get = %q", part)
			}
			n, err := s.Len(key)
			if err != nil || n != int64(len(data)) {
				t.Fatalf("Len = %d, %v", n, err)
			}
			if s.Count() != 1 {
				t.Fatalf("Count = %d", s.Count())
			}
		})
	}
}

func TestStoreImmutability(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := Key{Blob: 2, Version: 1, Index: 0}
			if err := s.Put(key, []byte("a")); err != nil {
				t.Fatal(err)
			}
			err := s.Put(key, []byte("b"))
			if !errors.Is(err, ErrExists) {
				t.Fatalf("double Put err = %v, want ErrExists", err)
			}
			got, err := s.Get(key, 0, 1)
			if err != nil || got[0] != 'a' {
				t.Fatalf("original data must survive: %q, %v", got, err)
			}
		})
	}
}

func TestStoreNotFound(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			_, err := s.Get(Key{Blob: 9}, 0, 1)
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("err = %v, want ErrNotFound", err)
			}
			_, err = s.Len(Key{Blob: 9})
			if !errors.Is(err, ErrNotFound) {
				t.Fatalf("Len err = %v, want ErrNotFound", err)
			}
		})
	}
}

func TestStoreRangeChecks(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			key := Key{Blob: 3}
			if err := s.Put(key, make([]byte, 10)); err != nil {
				t.Fatal(err)
			}
			for _, rng := range [][2]int64{{-1, 2}, {0, 11}, {5, 6}, {0, -1}} {
				if _, err := s.Get(key, rng[0], rng[1]); err == nil {
					t.Fatalf("range %v should fail", rng)
				}
			}
		})
	}
}

func TestMemStoreCopiesData(t *testing.T) {
	s := NewMemStore(nil)
	data := []byte{1, 2, 3}
	key := Key{Blob: 1}
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	data[0] = 99 // caller mutates its buffer after Put
	got, _ := s.Get(key, 0, 3)
	if got[0] != 1 {
		t.Fatal("store must not alias caller buffer")
	}
	got[1] = 88 // reader mutates the returned buffer
	got2, _ := s.Get(key, 0, 3)
	if got2[1] != 2 {
		t.Fatal("store must not alias reader buffer")
	}
}

func TestDiskStoreReload(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Blob: 5, Version: 2, Index: 1}
	if err := s1.Put(key, []byte("persisted")); err != nil {
		t.Fatal(err)
	}
	// Re-open: the size index must be rebuilt from the directory.
	s2, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	got, err := s2.Get(key, 0, 9)
	if err != nil || string(got) != "persisted" {
		t.Fatalf("reload Get = %q, %v", got, err)
	}
	if s2.Count() != 1 {
		t.Fatalf("reload Count = %d", s2.Count())
	}
}

func TestStoreConcurrentPuts(t *testing.T) {
	s := NewMemStore(nil)
	var wg sync.WaitGroup
	const n = 64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			key := Key{Blob: 1, Version: uint64(i), Index: 0}
			if err := s.Put(key, []byte{byte(i)}); err != nil {
				t.Errorf("Put %d: %v", i, err)
			}
		}(i)
	}
	wg.Wait()
	if s.Count() != n {
		t.Fatalf("Count = %d, want %d", s.Count(), n)
	}
	for i := 0; i < n; i++ {
		got, err := s.Get(Key{Blob: 1, Version: uint64(i)}, 0, 1)
		if err != nil || got[0] != byte(i) {
			t.Fatalf("Get %d = %v, %v", i, got, err)
		}
	}
}

func TestMeterIsCharged(t *testing.T) {
	meter := iosim.NewMeter(iosim.CostModel{}, true)
	s := NewMemStore(meter)
	key := Key{Blob: 1}
	if err := s.Put(key, make([]byte, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := s.Get(key, 0, 40); err != nil {
		t.Fatal(err)
	}
	st := meter.Stats()
	if st.Ops != 2 || st.Bytes != 140 {
		t.Fatalf("meter stats = %+v", st)
	}
}

func TestRefMarshalRoundTrip(t *testing.T) {
	f := func(blob, ver uint64, idx uint32, off, length int64, replicas []uint32) bool {
		if off < 0 {
			off = -off
		}
		if length < 0 {
			length = -length
		}
		if len(replicas) > 255 {
			replicas = replicas[:255]
		}
		if len(replicas) == 0 {
			replicas = nil
		}
		r := Ref{Key: Key{Blob: blob, Version: ver, Index: idx}, Offset: off, Length: length, Replicas: replicas}
		got, err := UnmarshalRef(r.Marshal())
		return err == nil && got.Key == r.Key && got.Offset == r.Offset &&
			got.Length == r.Length && reflect.DeepEqual(got.Replicas, r.Replicas)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestRefMarshalLegacyForm(t *testing.T) {
	// A replica-less ref keeps the fixed 36-byte pre-replication
	// encoding, so old marshaled refs stay decodable.
	r := Ref{Key: Key{Blob: 1, Version: 2, Index: 3}, Offset: 4, Length: 5}
	b := r.Marshal()
	if len(b) != 36 {
		t.Fatalf("replica-less ref marshals to %d bytes, want 36", len(b))
	}
	got, err := UnmarshalRef(b)
	if err != nil || !got.EqualData(r) || got.Replicas != nil {
		t.Fatalf("legacy round trip = %+v, %v", got, err)
	}
}

func TestRefMarshalTruncatesOversizedHint(t *testing.T) {
	// The count byte cannot wrap: oversized replica hints are cut to
	// 255 entries, not encoded mod 256.
	reps := make([]uint32, 300)
	for i := range reps {
		reps[i] = uint32(i)
	}
	r := Ref{Key: Key{Blob: 1}, Length: 1, Replicas: reps}
	got, err := UnmarshalRef(r.Marshal())
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Replicas) != 255 || got.Replicas[254] != 254 {
		t.Fatalf("decoded %d replicas, want the first 255", len(got.Replicas))
	}
}

func TestRefEqualDataIgnoresReplicas(t *testing.T) {
	a := Ref{Key: Key{Blob: 1}, Offset: 2, Length: 3, Replicas: []uint32{0, 1}}
	b := Ref{Key: Key{Blob: 1}, Offset: 2, Length: 3, Replicas: []uint32{4, 5}}
	if !a.EqualData(b) {
		t.Fatal("EqualData must ignore replica placement")
	}
	b.Offset = 9
	if a.EqualData(b) {
		t.Fatal("EqualData must see a range change")
	}
}

func TestUnmarshalRefShort(t *testing.T) {
	if _, err := UnmarshalRef(make([]byte, 10)); err == nil {
		t.Fatal("short buffer must fail")
	}
	// A replica count promising more entries than the buffer holds
	// must fail rather than read out of bounds.
	r := Ref{Key: Key{Blob: 1}, Length: 1, Replicas: []uint32{1, 2, 3}}
	b := r.Marshal()
	if _, err := UnmarshalRef(b[:len(b)-4]); err == nil {
		t.Fatal("truncated replica set must fail")
	}
}

func TestKeyString(t *testing.T) {
	k := Key{Blob: 1, Version: 2, Index: 3}
	if k.String() != "b1-v2-c3" {
		t.Fatalf("String = %q", k.String())
	}
}

func TestDiskStoreIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	s1, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	_ = s1
	// Drop a foreign file and reload.
	if err := os.WriteFile(filepath.Join(dir, "README.txt"), []byte("not a chunk"), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if s2.Count() != 0 {
		t.Fatalf("foreign files must be ignored, Count = %d", s2.Count())
	}
}

func TestPropStoreRandomRanges(t *testing.T) {
	s := NewMemStore(nil)
	r := rand.New(rand.NewSource(42))
	const size = 1024
	data := make([]byte, size)
	r.Read(data)
	key := Key{Blob: 77}
	if err := s.Put(key, data); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 200; i++ {
		off := int64(r.Intn(size))
		length := int64(r.Intn(size - int(off)))
		got, err := s.Get(key, off, length)
		if err != nil {
			t.Fatalf("Get(%d,%d): %v", off, length, err)
		}
		if !bytes.Equal(got, data[off:off+length]) {
			t.Fatalf("range [%d,%d) mismatch", off, off+length)
		}
	}
}

func BenchmarkMemStorePut(b *testing.B) {
	s := NewMemStore(nil)
	data := make([]byte, 64<<10)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		key := Key{Blob: 1, Version: uint64(i)}
		if err := s.Put(key, data); err != nil {
			b.Fatal(err)
		}
	}
}

func ExampleRef() {
	r := Ref{Key: Key{Blob: 1, Version: 4, Index: 2}, Offset: 128, Length: 64}
	back, _ := UnmarshalRef(r.Marshal())
	fmt.Println(back.Key, back.Offset, back.Length)
	// Output: b1-v4-c2 128 64
}
