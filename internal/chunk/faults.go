package chunk

import (
	"errors"
	"io"
	"sync/atomic"
)

// ErrInjected is the error FaultStore returns for injected failures.
var ErrInjected = errors.New("chunk: injected fault")

// ErrDown is the error every operation of a FaultStore returns while
// the store is in permanent down mode (SetDown): the machine holding
// the chunks is gone, not transiently failing.
var ErrDown = errors.New("chunk: provider down")

// FaultStore wraps a Store and fails a configurable subset of
// operations; used by failure-injection tests to exercise the write
// path's ticket-retirement logic. Two fault modes compose: transient
// fail-next-N counters per operation, and a permanent down mode
// (SetDown) under which every operation fails with ErrDown until the
// store is revived — the model of a dead machine that failover and
// repair tests need.
type FaultStore struct {
	Inner Store

	failPuts atomic.Int64 // number of upcoming Puts to fail
	failGets atomic.Int64 // number of upcoming Gets to fail
	down     atomic.Bool  // permanent failure of every operation

	// Stream faults fire mid-transfer rather than at call time; each
	// holds threshold+1 bytes so the zero value means disarmed, and is
	// claimed by the next stream that starts (one-shot).
	failPutStream atomic.Int64
	failGetStream atomic.Int64
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNextPuts arms n upcoming Put failures.
func (f *FaultStore) FailNextPuts(n int64) { f.failPuts.Store(n) }

// FailNextGets arms n upcoming Get failures.
func (f *FaultStore) FailNextGets(n int64) { f.failGets.Store(n) }

// SetDown enters (true) or leaves (false) permanent down mode. While
// down, every Put, Get and Len fails with ErrDown; the stored chunks
// survive and become readable again on revival.
func (f *FaultStore) SetDown(down bool) { f.down.Store(down) }

// IsDown reports whether the store is in permanent down mode.
func (f *FaultStore) IsDown() bool { return f.down.Load() }

// Put implements Store.
func (f *FaultStore) Put(key Key, data []byte) error {
	if f.down.Load() {
		return ErrDown
	}
	if take(&f.failPuts) {
		return ErrInjected
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key Key, off, length int64) ([]byte, error) {
	if f.down.Load() {
		return nil, ErrDown
	}
	if take(&f.failGets) {
		return nil, ErrInjected
	}
	return f.Inner.Get(key, off, length)
}

// Len implements Store.
func (f *FaultStore) Len(key Key) (int64, error) {
	if f.down.Load() {
		return 0, ErrDown
	}
	return f.Inner.Len(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key Key) error {
	if f.down.Load() {
		return ErrDown
	}
	return f.Inner.Delete(key)
}

// FailPutStreamAfter arms the next PutFromReader to fail with
// ErrInjected after roughly n payload bytes have been consumed — a
// writer dying mid-upload. One-shot: the first stream that starts
// claims the fault.
func (f *FaultStore) FailPutStreamAfter(n int64) { f.failPutStream.Store(n + 1) }

// FailGetStreamAfter arms the next OpenReader's stream to fail with
// ErrInjected after roughly n bytes have been served — a reader losing
// its provider mid-download. One-shot.
func (f *FaultStore) FailGetStreamAfter(n int64) { f.failGetStream.Store(n + 1) }

// claimStream takes an armed stream-fault threshold, returning
// (threshold, true) at most once per arming.
func claimStream(c *atomic.Int64) (int64, bool) {
	v := c.Swap(0)
	if v <= 0 {
		return 0, false
	}
	return v - 1, true
}

// faultReader injects mid-stream failures: ErrDown as soon as the
// store goes down (an in-flight transfer dies with the machine), and
// ErrInjected once the armed byte threshold is crossed.
type faultReader struct {
	r     io.Reader
	f     *FaultStore
	limit int64 // remaining bytes before ErrInjected; -1 = disarmed
}

func (fr *faultReader) Read(p []byte) (int, error) {
	if fr.f.down.Load() {
		return 0, ErrDown
	}
	if fr.limit >= 0 {
		if fr.limit == 0 {
			return 0, ErrInjected
		}
		if int64(len(p)) > fr.limit {
			p = p[:fr.limit]
		}
	}
	n, err := fr.r.Read(p)
	if fr.limit >= 0 {
		fr.limit -= int64(n)
	}
	return n, err
}

// faultReadCloser is faultReader over an owned stream.
type faultReadCloser struct {
	faultReader
	c io.Closer
}

func (frc *faultReadCloser) Close() error { return frc.c.Close() }

// PutFromReader implements Store. Injection points: call time (the
// fail-next-Puts counter and down mode, as for Put) and mid-stream
// (FailPutStreamAfter, or the store going down while the payload is in
// flight). Mid-stream failures surface through the inner store's
// reader, whose write protocol guarantees the torn chunk is never
// visible.
func (f *FaultStore) PutFromReader(key Key, size int64, r io.Reader) error {
	if f.down.Load() {
		return ErrDown
	}
	if take(&f.failPuts) {
		return ErrInjected
	}
	limit := int64(-1)
	if n, ok := claimStream(&f.failPutStream); ok {
		limit = n
	}
	return f.Inner.PutFromReader(key, size, &faultReader{r: r, f: f, limit: limit})
}

// OpenReader implements Store. Injection points: open time (the
// fail-next-Gets counter and down mode) and mid-stream
// (FailGetStreamAfter, or the store going down while the read is in
// flight).
func (f *FaultStore) OpenReader(key Key, off, length int64) (io.ReadCloser, error) {
	if f.down.Load() {
		return nil, ErrDown
	}
	if take(&f.failGets) {
		return nil, ErrInjected
	}
	rc, err := f.Inner.OpenReader(key, off, length)
	if err != nil {
		return nil, err
	}
	limit := int64(-1)
	if n, ok := claimStream(&f.failGetStream); ok {
		limit = n
	}
	return &faultReadCloser{faultReader: faultReader{r: rc, f: f, limit: limit}, c: rc}, nil
}

// Count implements Store.
func (f *FaultStore) Count() int { return f.Inner.Count() }

// Usage implements Store. Accounting is answered even while the store
// is down: it models out-of-band bookkeeping, not a data-path request
// to the dead machine (callers report the down flag alongside).
func (f *FaultStore) Usage() (int, int64) { return f.Inner.Usage() }

// take decrements the counter if positive and reports whether a fault
// fired.
func take(c *atomic.Int64) bool {
	for {
		cur := c.Load()
		if cur <= 0 {
			return false
		}
		if c.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}
