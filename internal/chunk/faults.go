package chunk

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error FaultStore returns for injected failures.
var ErrInjected = errors.New("chunk: injected fault")

// FaultStore wraps a Store and fails a configurable subset of
// operations; used by failure-injection tests to exercise the write
// path's ticket-retirement logic.
type FaultStore struct {
	Inner Store

	failPuts atomic.Int64 // number of upcoming Puts to fail
	failGets atomic.Int64 // number of upcoming Gets to fail
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNextPuts arms n upcoming Put failures.
func (f *FaultStore) FailNextPuts(n int64) { f.failPuts.Store(n) }

// FailNextGets arms n upcoming Get failures.
func (f *FaultStore) FailNextGets(n int64) { f.failGets.Store(n) }

// Put implements Store.
func (f *FaultStore) Put(key Key, data []byte) error {
	if take(&f.failPuts) {
		return ErrInjected
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key Key, off, length int64) ([]byte, error) {
	if take(&f.failGets) {
		return nil, ErrInjected
	}
	return f.Inner.Get(key, off, length)
}

// Len implements Store.
func (f *FaultStore) Len(key Key) (int64, error) { return f.Inner.Len(key) }

// Count implements Store.
func (f *FaultStore) Count() int { return f.Inner.Count() }

// take decrements the counter if positive and reports whether a fault
// fired.
func take(c *atomic.Int64) bool {
	for {
		cur := c.Load()
		if cur <= 0 {
			return false
		}
		if c.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}
