package chunk

import (
	"errors"
	"sync/atomic"
)

// ErrInjected is the error FaultStore returns for injected failures.
var ErrInjected = errors.New("chunk: injected fault")

// ErrDown is the error every operation of a FaultStore returns while
// the store is in permanent down mode (SetDown): the machine holding
// the chunks is gone, not transiently failing.
var ErrDown = errors.New("chunk: provider down")

// FaultStore wraps a Store and fails a configurable subset of
// operations; used by failure-injection tests to exercise the write
// path's ticket-retirement logic. Two fault modes compose: transient
// fail-next-N counters per operation, and a permanent down mode
// (SetDown) under which every operation fails with ErrDown until the
// store is revived — the model of a dead machine that failover and
// repair tests need.
type FaultStore struct {
	Inner Store

	failPuts atomic.Int64 // number of upcoming Puts to fail
	failGets atomic.Int64 // number of upcoming Gets to fail
	down     atomic.Bool  // permanent failure of every operation
}

var _ Store = (*FaultStore)(nil)

// NewFaultStore wraps inner with no faults armed.
func NewFaultStore(inner Store) *FaultStore { return &FaultStore{Inner: inner} }

// FailNextPuts arms n upcoming Put failures.
func (f *FaultStore) FailNextPuts(n int64) { f.failPuts.Store(n) }

// FailNextGets arms n upcoming Get failures.
func (f *FaultStore) FailNextGets(n int64) { f.failGets.Store(n) }

// SetDown enters (true) or leaves (false) permanent down mode. While
// down, every Put, Get and Len fails with ErrDown; the stored chunks
// survive and become readable again on revival.
func (f *FaultStore) SetDown(down bool) { f.down.Store(down) }

// IsDown reports whether the store is in permanent down mode.
func (f *FaultStore) IsDown() bool { return f.down.Load() }

// Put implements Store.
func (f *FaultStore) Put(key Key, data []byte) error {
	if f.down.Load() {
		return ErrDown
	}
	if take(&f.failPuts) {
		return ErrInjected
	}
	return f.Inner.Put(key, data)
}

// Get implements Store.
func (f *FaultStore) Get(key Key, off, length int64) ([]byte, error) {
	if f.down.Load() {
		return nil, ErrDown
	}
	if take(&f.failGets) {
		return nil, ErrInjected
	}
	return f.Inner.Get(key, off, length)
}

// Len implements Store.
func (f *FaultStore) Len(key Key) (int64, error) {
	if f.down.Load() {
		return 0, ErrDown
	}
	return f.Inner.Len(key)
}

// Delete implements Store.
func (f *FaultStore) Delete(key Key) error {
	if f.down.Load() {
		return ErrDown
	}
	return f.Inner.Delete(key)
}

// Count implements Store.
func (f *FaultStore) Count() int { return f.Inner.Count() }

// Usage implements Store. Accounting is answered even while the store
// is down: it models out-of-band bookkeeping, not a data-path request
// to the dead machine (callers report the down flag alongside).
func (f *FaultStore) Usage() (int, int64) { return f.Inner.Usage() }

// take decrements the counter if positive and reports whether a fault
// fired.
func take(c *atomic.Int64) bool {
	for {
		cur := c.Load()
		if cur <= 0 {
			return false
		}
		if c.CompareAndSwap(cur, cur-1) {
			return true
		}
	}
}
