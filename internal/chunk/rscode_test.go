package chunk

import (
	"bytes"
	"math/rand"
	"testing"
)

func TestRSCodeParams(t *testing.T) {
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {-1, 2}, {200, 60}} {
		if _, err := NewRSCode(bad[0], bad[1]); err == nil {
			t.Errorf("NewRSCode(%d,%d): want error", bad[0], bad[1])
		}
	}
	if _, err := NewRSCode(4, 2); err != nil {
		t.Fatalf("NewRSCode(4,2): %v", err)
	}
	if _, err := NewRSCode(200, 56); err != nil {
		t.Fatalf("NewRSCode(200,56): %v", err)
	}
}

func TestRSCodeRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, km := range [][2]int{{1, 1}, {2, 1}, {4, 2}, {6, 3}, {10, 4}} {
		c, err := NewRSCode(km[0], km[1])
		if err != nil {
			t.Fatal(err)
		}
		for _, size := range []int{1, 7, 64, 1000, 4096, 65537} {
			data := make([]byte, size)
			rng.Read(data)
			shards := c.Encode(data)
			if len(shards) != c.K+c.M {
				t.Fatalf("%d+%d size %d: %d shards", c.K, c.M, size, len(shards))
			}
			ss := c.ShardSize(int64(size))
			for i, s := range shards {
				if int64(len(s)) != ss {
					t.Fatalf("%d+%d size %d: shard %d has %d bytes, want %d", c.K, c.M, size, i, len(s), ss)
				}
			}
			if got := c.Join(shards, int64(size)); !bytes.Equal(got, data) {
				t.Fatalf("%d+%d size %d: join mismatch with no losses", c.K, c.M, size)
			}
		}
	}
}

// Every loss pattern of up to m shards must reconstruct byte-identical
// shards — data and parity alike.
func TestRSCodeAllLossPatterns(t *testing.T) {
	c, err := NewRSCode(4, 2)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(11))
	data := make([]byte, 10000)
	rng.Read(data)
	want := c.Encode(data)
	n := c.K + c.M
	for a := 0; a < n; a++ {
		for b := a; b < n; b++ { // a==b covers single losses
			shards := make([][]byte, n)
			for i := range shards {
				if i == a || i == b {
					continue
				}
				shards[i] = append([]byte(nil), want[i]...)
			}
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("lose {%d,%d}: %v", a, b, err)
			}
			for i := range shards {
				if !bytes.Equal(shards[i], want[i]) {
					t.Fatalf("lose {%d,%d}: shard %d differs after reconstruct", a, b, i)
				}
			}
			if got := c.Join(shards, int64(len(data))); !bytes.Equal(got, data) {
				t.Fatalf("lose {%d,%d}: joined data differs", a, b)
			}
		}
	}
}

func TestRSCodeTooFewShards(t *testing.T) {
	c, _ := NewRSCode(4, 2)
	shards := c.Encode(bytes.Repeat([]byte{0xAB}, 512))
	shards[0], shards[2], shards[5] = nil, nil, nil
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with k-1 shards: want error")
	}
}

func TestRSCodeShardLengthMismatch(t *testing.T) {
	c, _ := NewRSCode(4, 2)
	shards := c.Encode(bytes.Repeat([]byte{1}, 512))
	shards[3] = shards[3][:10]
	if err := c.Reconstruct(shards); err == nil {
		t.Fatal("reconstruct with ragged shards: want error")
	}
}
