package chunk

import (
	"errors"
	"math/rand"
	"os"
	"path/filepath"
	"testing"
	"testing/quick"
)

func TestStoreDeleteAndUsage(t *testing.T) {
	for name, s := range stores(t) {
		t.Run(name, func(t *testing.T) {
			k1 := Key{Blob: 1, Version: 1, Index: 0}
			k2 := Key{Blob: 1, Version: 2, Index: 0}
			if err := s.Put(k1, make([]byte, 100)); err != nil {
				t.Fatal(err)
			}
			if err := s.Put(k2, make([]byte, 50)); err != nil {
				t.Fatal(err)
			}
			if n, b := s.Usage(); n != 2 || b != 150 {
				t.Fatalf("usage = %d chunks / %d bytes, want 2 / 150", n, b)
			}
			if err := s.Delete(k1); err != nil {
				t.Fatal(err)
			}
			if n, b := s.Usage(); n != 1 || b != 50 {
				t.Fatalf("after delete: usage = %d / %d, want 1 / 50", n, b)
			}
			if _, err := s.Get(k1, 0, 1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("get deleted = %v, want ErrNotFound", err)
			}
			if err := s.Delete(k1); !errors.Is(err, ErrNotFound) {
				t.Fatalf("double delete = %v, want ErrNotFound", err)
			}
			// A deleted key may be stored again (the store no longer
			// holds it, so immutability is not violated).
			if err := s.Put(k1, make([]byte, 10)); err != nil {
				t.Fatalf("re-put after delete: %v", err)
			}
			if got, err := s.Len(k1); err != nil || got != 10 {
				t.Fatalf("re-put len = %d, %v", got, err)
			}
		})
	}
}

func TestDiskStoreDeleteRemovesFile(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Blob: 3, Version: 4, Index: 5}
	if err := s.Put(key, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(dir, key.String())
	if _, err := os.Stat(path); err != nil {
		t.Fatal(err)
	}
	if err := s.Delete(key); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(path); !os.IsNotExist(err) {
		t.Fatalf("chunk file survives delete: %v", err)
	}
	// A reloaded store must agree the chunk is gone.
	s2, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if n, b := s2.Usage(); n != 0 || b != 0 {
		t.Fatalf("reloaded usage = %d / %d after delete", n, b)
	}
}

func TestFaultStoreDeleteDown(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	key := Key{Blob: 1}
	if err := f.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.SetDown(true)
	if err := f.Delete(key); !errors.Is(err, ErrDown) {
		t.Fatalf("delete on down store = %v, want ErrDown", err)
	}
	// Accounting still answers (out-of-band bookkeeping).
	if n, b := f.Usage(); n != 1 || b != 1 {
		t.Fatalf("usage while down = %d / %d", n, b)
	}
	f.SetDown(false)
	if err := f.Delete(key); err != nil {
		t.Fatal(err)
	}
}

// TestPropRefLegacyVsReplicaForms pins the wire compatibility between
// the legacy fixed 36-byte ref encoding and the variable-length
// replica form: a replica-less ref always round-trips through exactly
// 36 bytes; a replicated ref round-trips through 37+4n bytes; and the
// 36-byte prefix of a replicated encoding decodes as the same data
// seen by a pre-replication reader (EqualData true, no replicas) —
// placement is a hint layered on top of the data identity, never part
// of it.
func TestPropRefLegacyVsReplicaForms(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	f := func(blob, ver uint64, idx uint32, off, length int64, nReplicas uint8) bool {
		if off < 0 {
			off = -off
		}
		if length < 0 {
			length = -length
		}
		r := Ref{Key: Key{Blob: blob, Version: ver, Index: idx}, Offset: off, Length: length}
		for i := 0; i < int(nReplicas); i++ {
			r.Replicas = append(r.Replicas, rng.Uint32())
		}
		b := r.Marshal()
		if len(r.Replicas) == 0 {
			if len(b) != 36 {
				return false
			}
		} else if len(b) != 37+4*len(r.Replicas) {
			return false
		}
		got, err := UnmarshalRef(b)
		if err != nil || !got.EqualData(r) || len(got.Replicas) != len(r.Replicas) {
			return false
		}
		for i := range got.Replicas {
			if got.Replicas[i] != r.Replicas[i] {
				return false
			}
		}
		// Legacy view: the fixed 36-byte prefix is a complete,
		// replica-less encoding of the same data.
		legacy, err := UnmarshalRef(b[:36])
		if err != nil || !legacy.EqualData(r) || legacy.Replicas != nil {
			return false
		}
		// EqualData ignores placement: reshuffled replicas compare
		// equal, a moved byte range does not.
		shuffled := r
		shuffled.Replicas = append([]uint32(nil), r.Replicas...)
		rng.Shuffle(len(shuffled.Replicas), func(i, j int) {
			shuffled.Replicas[i], shuffled.Replicas[j] = shuffled.Replicas[j], shuffled.Replicas[i]
		})
		if !r.EqualData(shuffled) {
			return false
		}
		moved := r
		moved.Offset++
		return !r.EqualData(moved)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
