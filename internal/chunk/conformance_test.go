package chunk

import (
	"bytes"
	"errors"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// The conformance suite runs every backend the factory can build
// through one behavioral contract: Put/Get/ranged-Get/Delete/Usage/Len,
// the streaming pair, and error identity (ErrExists on double store,
// ErrNotFound on absent keys). A backend that passes here is safe to
// drop behind a provider via -store without any other code noticing.

type backendCase struct {
	name string
	url  func(t *testing.T) string
	// fidelity is false for backends that intentionally discard
	// payload bytes (null): size and error behavior are still
	// checked, data round trips are not.
	fidelity bool
}

func backends() []backendCase {
	return []backendCase{
		{name: "mem", url: func(t *testing.T) string { return "mem://" }, fidelity: true},
		{name: "disk", url: func(t *testing.T) string { return "disk://" + t.TempDir() }, fidelity: true},
		{name: "fault+mem", url: func(t *testing.T) string { return "fault+mem://" }, fidelity: true},
		{name: "null", url: func(t *testing.T) string { return "null://" }, fidelity: false},
	}
}

func TestStoreConformance(t *testing.T) {
	for _, bc := range backends() {
		t.Run(bc.name, func(t *testing.T) {
			s, err := OpenStore(bc.url(t), nil)
			if err != nil {
				t.Fatalf("OpenStore: %v", err)
			}
			runConformance(t, s, bc.fidelity)
		})
	}
}

func runConformance(t *testing.T, s Store, fidelity bool) {
	key := Key{Blob: 1, Version: 2, Index: 3}
	payload := make([]byte, 4096)
	for i := range payload {
		payload[i] = byte(i * 7)
	}

	// Absent keys: uniform ErrNotFound from every read-side entry.
	if _, err := s.Get(key, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get absent: got %v, want ErrNotFound", err)
	}
	if _, err := s.Len(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Len absent: got %v, want ErrNotFound", err)
	}
	if _, err := s.OpenReader(key, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("OpenReader absent: got %v, want ErrNotFound", err)
	}
	if err := s.Delete(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Delete absent: got %v, want ErrNotFound", err)
	}

	if err := s.Put(key, payload); err != nil {
		t.Fatalf("Put: %v", err)
	}
	if err := s.Put(key, payload); !errors.Is(err, ErrExists) {
		t.Fatalf("double Put: got %v, want ErrExists", err)
	}
	if err := s.PutFromReader(key, int64(len(payload)), bytes.NewReader(payload)); !errors.Is(err, ErrExists) {
		t.Fatalf("PutFromReader over existing: got %v, want ErrExists", err)
	}

	if n, err := s.Len(key); err != nil || n != int64(len(payload)) {
		t.Fatalf("Len: got (%d, %v), want (%d, nil)", n, err, len(payload))
	}
	if c := s.Count(); c != 1 {
		t.Fatalf("Count: got %d, want 1", c)
	}
	if c, b := s.Usage(); c != 1 || b != int64(len(payload)) {
		t.Fatalf("Usage: got (%d, %d), want (1, %d)", c, b, len(payload))
	}

	full, err := s.Get(key, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("Get full: %v", err)
	}
	if fidelity && !bytes.Equal(full, payload) {
		t.Fatal("Get full: payload mismatch")
	}
	ranged, err := s.Get(key, 100, 200)
	if err != nil {
		t.Fatalf("Get ranged: %v", err)
	}
	if len(ranged) != 200 {
		t.Fatalf("Get ranged: got %d bytes, want 200", len(ranged))
	}
	if fidelity && !bytes.Equal(ranged, payload[100:300]) {
		t.Fatal("Get ranged: payload mismatch")
	}
	if _, err := s.Get(key, 4000, 200); err == nil {
		t.Fatal("Get out of bounds: want error")
	}

	// Streaming read, full then ranged, must agree with Get.
	rc, err := s.OpenReader(key, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("OpenReader full: %v", err)
	}
	got, err := io.ReadAll(rc)
	rc.Close()
	if err != nil || len(got) != len(payload) {
		t.Fatalf("stream full: got (%d bytes, %v), want (%d, nil)", len(got), err, len(payload))
	}
	if fidelity && !bytes.Equal(got, payload) {
		t.Fatal("stream full: payload mismatch")
	}
	rc, err = s.OpenReader(key, 1000, 512)
	if err != nil {
		t.Fatalf("OpenReader ranged: %v", err)
	}
	got, err = io.ReadAll(rc)
	rc.Close()
	if err != nil || len(got) != 512 {
		t.Fatalf("stream ranged: got (%d bytes, %v), want (512, nil)", len(got), err)
	}
	if fidelity && !bytes.Equal(got, payload[1000:1512]) {
		t.Fatal("stream ranged: payload mismatch")
	}
	if _, err := s.OpenReader(key, 4000, 200); err == nil {
		t.Fatal("OpenReader out of bounds: want error")
	}

	// Streaming write of a second chunk.
	key2 := Key{Blob: 1, Version: 2, Index: 4}
	if err := s.PutFromReader(key2, int64(len(payload)), bytes.NewReader(payload)); err != nil {
		t.Fatalf("PutFromReader: %v", err)
	}
	if fidelity {
		got, err := s.Get(key2, 0, int64(len(payload)))
		if err != nil || !bytes.Equal(got, payload) {
			t.Fatalf("Get after PutFromReader: err=%v, equal=%v", err, bytes.Equal(got, payload))
		}
	}
	if c, b := s.Usage(); c != 2 || b != 2*int64(len(payload)) {
		t.Fatalf("Usage after stream put: got (%d, %d), want (2, %d)", c, b, 2*len(payload))
	}

	// A short source must leave the key absent — no torn chunk.
	key3 := Key{Blob: 1, Version: 2, Index: 5}
	short := bytes.NewReader(payload[:100])
	if err := s.PutFromReader(key3, int64(len(payload)), short); err == nil {
		t.Fatal("PutFromReader short source: want error")
	}
	if _, err := s.Len(key3); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Len after torn put: got %v, want ErrNotFound", err)
	}
	if c, b := s.Usage(); c != 2 || b != 2*int64(len(payload)) {
		t.Fatalf("Usage after torn put: got (%d, %d), want unchanged (2, %d)", c, b, 2*len(payload))
	}

	// Delete reclaims accounting and restores ErrNotFound identity.
	if err := s.Delete(key); err != nil {
		t.Fatalf("Delete: %v", err)
	}
	if _, err := s.Get(key, 0, 1); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Get after delete: got %v, want ErrNotFound", err)
	}
	if c, b := s.Usage(); c != 1 || b != int64(len(payload)) {
		t.Fatalf("Usage after delete: got (%d, %d), want (1, %d)", c, b, len(payload))
	}
}

// TestFactoryRejectsBadURLs pins the factory's validation behavior.
func TestFactoryRejectsBadURLs(t *testing.T) {
	for _, bad := range []string{"s3://bucket", "disk://", "", "fault+s3://x"} {
		if _, err := OpenStore(bad, nil); err == nil {
			t.Errorf("OpenStore(%q): want error", bad)
		}
		if err := ValidStoreURL(bad); err == nil {
			t.Errorf("ValidStoreURL(%q): want error", bad)
		}
	}
	for _, good := range []string{"mem://", "null://", "disk:///tmp/x", "fault+mem://"} {
		if err := ValidStoreURL(good); err != nil {
			t.Errorf("ValidStoreURL(%q): %v", good, err)
		}
	}
}

// TestForProviderDerivesDiskSubdirs pins the per-provider URL
// derivation: disk stores split into p<id> subdirectories, path-less
// schemes pass through.
func TestForProviderDerivesDiskSubdirs(t *testing.T) {
	if got := ForProvider("disk:///var/chunks", 3); got != "disk:///var/chunks/p3" {
		t.Fatalf("ForProvider disk: got %q", got)
	}
	if got := ForProvider("fault+disk:///var/chunks", 0); got != "fault+disk:///var/chunks/p0" {
		t.Fatalf("ForProvider fault+disk: got %q", got)
	}
	if got := ForProvider("mem://", 5); got != "mem://" {
		t.Fatalf("ForProvider mem: got %q", got)
	}
	// Two providers of one pool must land in distinct directories.
	dir := t.TempDir()
	base := "disk://" + dir
	s0, err := OpenStore(ForProvider(base, 0), nil)
	if err != nil {
		t.Fatal(err)
	}
	s1, err := OpenStore(ForProvider(base, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Blob: 9, Version: 9, Index: 9}
	if err := s0.Put(key, []byte("abc")); err != nil {
		t.Fatal(err)
	}
	if _, err := s1.Len(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("provider stores share state: %v", err)
	}
}

// TestDiskPutCrashSafe is the satellite-b regression: a mid-write
// failure (simulated by a short source stream) must never leave a
// visible, truncated chunk file, and a crash's leftover temp file must
// be ignored and cleaned by the rescan instead of being indexed.
func TestDiskPutCrashSafe(t *testing.T) {
	dir := t.TempDir()
	s, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	key := Key{Blob: 7, Version: 1, Index: 0}

	// Interrupted stream: key absent, no chunk file, no temp debris.
	if err := s.PutFromReader(key, 1<<20, &iotestErrReader{limit: 4096}); err == nil {
		t.Fatal("want error from interrupted stream")
	}
	if _, err := s.Len(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("Len after interrupted put: got %v, want ErrNotFound", err)
	}
	if _, err := os.Stat(filepath.Join(dir, key.String())); !os.IsNotExist(err) {
		t.Fatalf("chunk file exists after interrupted put: %v", err)
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if strings.HasPrefix(e.Name(), tmpPrefix) {
			t.Fatalf("temp debris left behind: %s", e.Name())
		}
	}

	// The key is retryable after the failure.
	if err := s.Put(key, []byte("recovered")); err != nil {
		t.Fatalf("Put after failed put: %v", err)
	}

	// Crash between write and rename: plant a temp file as the crash
	// would leave it, reopen, and check it is neither indexed nor kept.
	planted := filepath.Join(dir, tmpPrefix+"b7-v1-c1-12345")
	if err := os.WriteFile(planted, make([]byte, 512), 0o644); err != nil {
		t.Fatal(err)
	}
	s2, err := NewDiskStore(dir, nil)
	if err != nil {
		t.Fatal(err)
	}
	if c := s2.Count(); c != 1 {
		t.Fatalf("rescan indexed temp debris: Count=%d, want 1", c)
	}
	if _, err := os.Stat(planted); !os.IsNotExist(err) {
		t.Fatalf("rescan kept temp debris: %v", err)
	}
	if got, err := s2.Get(key, 0, 9); err != nil || string(got) != "recovered" {
		t.Fatalf("survivor chunk after rescan: (%q, %v)", got, err)
	}
}

// TestFaultStoreStreamFaults pins the mid-stream injection modes: a
// put stream dying after N bytes never publishes a torn chunk, a get
// stream dying after N bytes surfaces ErrInjected, and SetDown while a
// read is in flight kills it with ErrDown.
func TestFaultStoreStreamFaults(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	payload := make([]byte, 64<<10)
	for i := range payload {
		payload[i] = byte(i)
	}
	key := Key{Blob: 1, Version: 1, Index: 0}

	f.FailPutStreamAfter(1000)
	err := f.PutFromReader(key, int64(len(payload)), bytes.NewReader(payload))
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("put stream fault: got %v, want ErrInjected", err)
	}
	if _, err := f.Len(key); !errors.Is(err, ErrNotFound) {
		t.Fatalf("torn chunk visible: %v", err)
	}
	// One-shot: the next stream sails through.
	if err := f.PutFromReader(key, int64(len(payload)), bytes.NewReader(payload)); err != nil {
		t.Fatalf("put after one-shot fault: %v", err)
	}

	f.FailGetStreamAfter(1000)
	rc, err := f.OpenReader(key, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	_, err = io.ReadAll(rc)
	rc.Close()
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("get stream fault: got %v, want ErrInjected", err)
	}

	rc, err = f.OpenReader(key, 0, int64(len(payload)))
	if err != nil {
		t.Fatalf("OpenReader: %v", err)
	}
	buf := make([]byte, 100)
	if _, err := io.ReadFull(rc, buf); err != nil {
		t.Fatalf("read before down: %v", err)
	}
	f.SetDown(true)
	if _, err := rc.Read(buf); !errors.Is(err, ErrDown) {
		t.Fatalf("in-flight read after SetDown: got %v, want ErrDown", err)
	}
	rc.Close()
	f.SetDown(false)
}

// iotestErrReader yields limit bytes then a permanent error — a source
// dying mid-stream.
type iotestErrReader struct{ limit int }

func (r *iotestErrReader) Read(p []byte) (int, error) {
	if r.limit <= 0 {
		return 0, errors.New("source died")
	}
	if len(p) > r.limit {
		p = p[:r.limit]
	}
	for i := range p {
		p[i] = 0xAB
	}
	r.limit -= len(p)
	return len(p), nil
}

// TestDiskSyncOption pins the ?sync=1 URL option: both forms open and
// round-trip, and the query survives per-provider URL derivation.
func TestDiskSyncOption(t *testing.T) {
	dir := t.TempDir()
	for _, raw := range []string{"disk://" + dir + "/plain", "disk://" + dir + "/sync?sync=1"} {
		s, err := OpenStore(raw, nil)
		if err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		key := Key{Blob: 1, Version: 1, Index: 0}
		if err := s.Put(key, []byte("abc")); err != nil {
			t.Fatalf("%s: %v", raw, err)
		}
		got, err := s.Get(key, 0, 3)
		if err != nil || string(got) != "abc" {
			t.Fatalf("%s: get = %q, %v", raw, got, err)
		}
	}
	if got, want := ForProvider("disk:///d?sync=1", 3), "disk:///d/p3?sync=1"; got != want {
		t.Fatalf("ForProvider = %q, want %q", got, want)
	}
	if err := ValidStoreURL("disk:///d?sync=1"); err != nil {
		t.Fatal(err)
	}
}
