package chunk

import (
	"errors"
	"sync"
	"testing"
)

func TestFaultStorePassThrough(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	key := Key{Blob: 1}
	if err := f.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	got, err := f.Get(key, 0, 1)
	if err != nil || got[0] != 'x' {
		t.Fatalf("Get = %v, %v", got, err)
	}
	if n, err := f.Len(key); err != nil || n != 1 {
		t.Fatalf("Len = %d, %v", n, err)
	}
	if f.Count() != 1 {
		t.Fatalf("Count = %d", f.Count())
	}
}

func TestFaultStoreInjectsPutFailures(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	f.FailNextPuts(2)
	if err := f.Put(Key{Blob: 1}, []byte("a")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if err := f.Put(Key{Blob: 2}, []byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	// Third put succeeds.
	if err := f.Put(Key{Blob: 3}, []byte("c")); err != nil {
		t.Fatal(err)
	}
}

func TestFaultStoreInjectsGetFailures(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	key := Key{Blob: 1}
	if err := f.Put(key, []byte("x")); err != nil {
		t.Fatal(err)
	}
	f.FailNextGets(1)
	if _, err := f.Get(key, 0, 1); !errors.Is(err, ErrInjected) {
		t.Fatalf("err = %v", err)
	}
	if _, err := f.Get(key, 0, 1); err != nil {
		t.Fatalf("recovered Get err = %v", err)
	}
}

func TestFaultStoreDownMode(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	key := Key{Blob: 1}
	if err := f.Put(key, []byte("survivor")); err != nil {
		t.Fatal(err)
	}
	f.SetDown(true)
	if !f.IsDown() {
		t.Fatal("IsDown = false after SetDown(true)")
	}
	// Down is permanent, not a counter: every operation keeps failing.
	for i := 0; i < 3; i++ {
		if err := f.Put(Key{Blob: uint64(10 + i)}, []byte("x")); !errors.Is(err, ErrDown) {
			t.Fatalf("Put %d err = %v, want ErrDown", i, err)
		}
		if _, err := f.Get(key, 0, 1); !errors.Is(err, ErrDown) {
			t.Fatalf("Get %d err = %v, want ErrDown", i, err)
		}
		if _, err := f.Len(key); !errors.Is(err, ErrDown) {
			t.Fatalf("Len %d err = %v, want ErrDown", i, err)
		}
	}
	// Revival: the chunks written before the outage are intact.
	f.SetDown(false)
	got, err := f.Get(key, 0, 8)
	if err != nil || string(got) != "survivor" {
		t.Fatalf("Get after revival = %q, %v", got, err)
	}
}

func TestFaultStoreDownTrumpsCounters(t *testing.T) {
	// Down mode fails operations without consuming armed fail-next
	// counters: a dead machine is not "using up" transient faults.
	f := NewFaultStore(NewMemStore(nil))
	f.FailNextPuts(1)
	f.SetDown(true)
	if err := f.Put(Key{Blob: 1}, []byte("x")); !errors.Is(err, ErrDown) {
		t.Fatalf("err = %v, want ErrDown", err)
	}
	f.SetDown(false)
	if err := f.Put(Key{Blob: 2}, []byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("counter err = %v, want ErrInjected still armed", err)
	}
}

func TestFaultStoreConcurrentArming(t *testing.T) {
	f := NewFaultStore(NewMemStore(nil))
	const n = 32
	f.FailNextPuts(n / 2)
	var failed, ok int
	var mu sync.Mutex
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			err := f.Put(Key{Blob: uint64(i)}, []byte{1})
			mu.Lock()
			if err != nil {
				failed++
			} else {
				ok++
			}
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	if failed != n/2 || ok != n/2 {
		t.Fatalf("failed=%d ok=%d, want exactly %d each", failed, ok, n/2)
	}
}
