package iosim

import (
	"sync"
	"testing"
	"time"
)

func TestCostModelDuration(t *testing.T) {
	c := CostModel{PerOp: time.Millisecond, BytesPerSec: 1000}
	if got := c.Duration(0); got != time.Millisecond {
		t.Fatalf("Duration(0) = %v, want 1ms", got)
	}
	// 500 bytes at 1000 B/s = 500ms transfer.
	if got := c.Duration(500); got != time.Millisecond+500*time.Millisecond {
		t.Fatalf("Duration(500) = %v", got)
	}
}

func TestZeroModelChargesNothing(t *testing.T) {
	var c CostModel
	if !c.Zero() {
		t.Fatal("zero value must be Zero()")
	}
	if got := c.Duration(1 << 30); got != 0 {
		t.Fatalf("zero model Duration = %v", got)
	}
}

func TestMeterCounters(t *testing.T) {
	m := NewMeter(CostModel{}, true)
	m.Charge(100)
	m.Charge(50)
	s := m.Stats()
	if s.Ops != 2 || s.Bytes != 150 {
		t.Fatalf("stats = %+v", s)
	}
	m.Reset()
	if s := m.Stats(); s.Ops != 0 || s.Bytes != 0 || s.Busy != 0 {
		t.Fatalf("after reset stats = %+v", s)
	}
}

func TestMeterBusyAccumulates(t *testing.T) {
	m := NewMeter(CostModel{PerOp: time.Millisecond}, true)
	m.SetClock(NopClock{})
	for i := 0; i < 5; i++ {
		m.Charge(0)
	}
	if got := m.Stats().Busy; got != 5*time.Millisecond {
		t.Fatalf("busy = %v, want 5ms", got)
	}
}

func TestExclusiveMeterSerializes(t *testing.T) {
	// With an exclusive meter and a real clock, two concurrent charges
	// of 5ms each must take >= ~10ms in total.
	m := NewMeter(CostModel{PerOp: 5 * time.Millisecond}, true)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Charge(0)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed < 9*time.Millisecond {
		t.Fatalf("exclusive charges overlapped: elapsed %v", elapsed)
	}
}

func TestSharedMeterOverlaps(t *testing.T) {
	m := NewMeter(CostModel{PerOp: 10 * time.Millisecond}, false)
	start := time.Now()
	var wg sync.WaitGroup
	for i := 0; i < 4; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			m.Charge(0)
		}()
	}
	wg.Wait()
	if elapsed := time.Since(start); elapsed > 35*time.Millisecond {
		t.Fatalf("shared charges appear serialized: elapsed %v", elapsed)
	}
}

func TestDefaultModels(t *testing.T) {
	if DefaultNetwork().Zero() || DefaultMetadata().Zero() {
		t.Fatal("default models must charge")
	}
	if DefaultNetwork().BytesPerSec <= 0 {
		t.Fatal("network model needs positive bandwidth")
	}
}
