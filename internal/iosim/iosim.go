// Package iosim provides the synthetic I/O cost model that stands in for
// the real network and disks of the paper's Grid'5000 testbed.
//
// Every storage server (data provider, metadata provider, OST, lock
// manager) charges each operation a fixed per-operation latency plus a
// per-byte transfer cost. An exclusive meter models a server with one
// bandwidth-limited service channel: concurrent requests queue in
// virtual time (a monotonically advancing busy-until deadline), so a
// server naturally serializes its load — which is exactly the
// contention behaviour the paper's evaluation depends on. A zero
// CostModel charges nothing, so unit tests run at full speed.
//
// Waiting is implemented with a yielding spin on the monotonic clock
// rather than time.Sleep: the experiments charge costs of tens of
// microseconds, far below the sleep granularity of typical kernels
// (~1ms), and the spin keeps the simulation accurate even with many
// more waiters than cores.
package iosim

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
)

// CostModel describes the synthetic cost of operations against one
// storage element. The zero value charges nothing.
type CostModel struct {
	// PerOp is the fixed latency charged per operation (request
	// processing + network round trip).
	PerOp time.Duration
	// BytesPerSec is the server's sustained transfer bandwidth. Zero
	// means infinite bandwidth (no per-byte charge).
	BytesPerSec int64
}

// Duration returns the simulated service time for an operation moving n
// bytes.
func (c CostModel) Duration(n int64) time.Duration {
	d := c.PerOp
	if c.BytesPerSec > 0 && n > 0 {
		d += time.Duration(float64(n) / float64(c.BytesPerSec) * float64(time.Second))
	}
	return d
}

// Zero reports whether the model charges nothing.
func (c CostModel) Zero() bool { return c.PerOp == 0 && c.BytesPerSec == 0 }

// Waiter blocks until a deadline. The default implementation spins
// with scheduler yields; tests may substitute NopClock.
type Waiter interface {
	WaitUntil(deadline time.Time)
}

// SpinClock waits by yielding-spinning on the monotonic clock. It is
// accurate to a few microseconds even when waiters outnumber cores.
type SpinClock struct{}

// WaitUntil implements Waiter.
func (SpinClock) WaitUntil(deadline time.Time) {
	// For long waits, sleep off the bulk and spin only the tail, so a
	// heavily queued server does not burn a core for its whole backlog.
	const spinTail = 2 * time.Millisecond
	for {
		remaining := time.Until(deadline)
		if remaining <= 0 {
			return
		}
		if remaining > spinTail {
			time.Sleep(remaining - spinTail)
			continue
		}
		break
	}
	for time.Now().Before(deadline) {
		runtime.Gosched()
	}
}

// NopClock ignores all waits; used by fast unit tests.
type NopClock struct{}

// WaitUntil implements Waiter.
func (NopClock) WaitUntil(time.Time) {}

// Meter is the per-server accounting object: it applies the cost model
// and tracks operation statistics. A Meter is safe for concurrent use.
//
// An exclusive meter serializes service in virtual time: each charge
// appends its duration to the server's busy-until deadline and the
// caller waits (concurrently with other waiters) until its own
// position in the queue is reached. A shared meter charges only the
// caller's latency.
type Meter struct {
	model     CostModel
	clock     Waiter
	exclusive bool

	mu        sync.Mutex // guards busyUntil
	busyUntil time.Time

	ops   atomic.Int64
	bytes atomic.Int64
	busy  atomic.Int64 // accumulated simulated busy time, ns
}

// NewMeter builds a meter with the given model. Exclusive meters
// serialize the simulated service time, modelling a server with a
// single bandwidth-limited resource.
func NewMeter(model CostModel, exclusive bool) *Meter {
	return &Meter{model: model, clock: SpinClock{}, exclusive: exclusive}
}

// SetClock substitutes the waiter; intended for tests.
func (m *Meter) SetClock(w Waiter) { m.clock = w }

// Charge accounts one operation of n bytes, blocking for the simulated
// service time.
func (m *Meter) Charge(n int64) {
	m.ops.Add(1)
	m.bytes.Add(n)
	if m.model.Zero() {
		return
	}
	d := m.model.Duration(n)
	m.busy.Add(int64(d))
	if m.exclusive {
		m.mu.Lock()
		now := time.Now()
		start := m.busyUntil
		if start.Before(now) {
			start = now
		}
		deadline := start.Add(d)
		m.busyUntil = deadline
		m.mu.Unlock()
		m.clock.WaitUntil(deadline)
		return
	}
	m.clock.WaitUntil(time.Now().Add(d))
}

// ChargeDuration accounts an operation with an explicit duration
// instead of one derived from the cost model. Used for costs that
// scale with something other than bytes (e.g. conflict detection work
// proportional to the number of concurrent operations). A zero or
// negative duration only counts the op.
func (m *Meter) ChargeDuration(d time.Duration) {
	m.ops.Add(1)
	if d <= 0 {
		return
	}
	m.busy.Add(int64(d))
	if m.exclusive {
		m.mu.Lock()
		now := time.Now()
		start := m.busyUntil
		if start.Before(now) {
			start = now
		}
		deadline := start.Add(d)
		m.busyUntil = deadline
		m.mu.Unlock()
		m.clock.WaitUntil(deadline)
		return
	}
	m.clock.WaitUntil(time.Now().Add(d))
}

// Stats is a snapshot of meter counters.
type Stats struct {
	Ops   int64
	Bytes int64
	Busy  time.Duration
}

// Stats returns a snapshot of the meter counters.
func (m *Meter) Stats() Stats {
	return Stats{
		Ops:   m.ops.Load(),
		Bytes: m.bytes.Load(),
		Busy:  time.Duration(m.busy.Load()),
	}
}

// Reset zeroes the counters (not the model).
func (m *Meter) Reset() {
	m.ops.Store(0)
	m.bytes.Store(0)
	m.busy.Store(0)
}

// Model returns the meter's cost model.
func (m *Meter) Model() CostModel { return m.model }

// DefaultNetwork is a representative cost model for one storage server
// reachable over a cluster network, tuned so experiments complete in
// seconds: 100µs per op, 1 GiB/s sustained bandwidth.
func DefaultNetwork() CostModel {
	return CostModel{PerOp: 100 * time.Microsecond, BytesPerSec: 1 << 30}
}

// DefaultMetadata is a representative cost model for a metadata server:
// latency-bound small messages.
func DefaultMetadata() CostModel {
	return CostModel{PerOp: 50 * time.Microsecond, BytesPerSec: 4 << 30}
}
