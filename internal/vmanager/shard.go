package vmanager

import (
	"fmt"
	"strconv"
	"sync"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metrics"
	"repro/internal/segtree"
)

// Sharded partitions blobs across N independent Managers by a stable
// hash of the blob ID, removing the single-control-server ceiling: each
// shard keeps its own lock, its own exclusive control meter, and its own
// group-commit combiners, so control traffic for different blobs
// proceeds in parallel. The API is the same VersionService the client
// already speaks — every method routes to the owning shard — and the
// batch entry points split a batch per shard, dispatch the sub-batches
// concurrently, and re-stitch the results in request order, preserving
// per-request error identity.
//
// The blob→shard mapping is a pure function of (blob ID, shard count):
// stable across restarts and across router instances, so ownership can
// be computed anywhere (see ShardIndex). Changing the shard count
// remaps blobs; resharding live state is out of scope.
type Sharded struct {
	shards []*Manager
}

// ShardIndex returns the owning shard of a blob in an n-shard control
// plane. The mapping must be stable forever — it is the unit the
// torture suite and operators reason about — so it is a fixed bit mixer
// (the splitmix64 finalizer) reduced mod n, not anything seeded or
// map-iteration dependent.
func ShardIndex(blob uint64, n int) int {
	if n <= 1 {
		return 0
	}
	x := blob
	x += 0x9e3779b97f4a7c15
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return int(x % uint64(n))
}

// NewSharded creates an n-shard control plane, each shard a full
// Manager charged with the given cost model (so n shards really are n
// control servers in the simulation — n exclusive meters queueing
// independently). n < 1 is treated as 1; a 1-shard control plane
// behaves exactly like a lone Manager.
func NewSharded(model iosim.CostModel, n int) *Sharded {
	if n < 1 {
		n = 1
	}
	s := &Sharded{shards: make([]*Manager, n)}
	for i := range s.shards {
		s.shards[i] = New(model)
	}
	return s
}

// NumShards returns the shard count.
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardOf returns the index of the shard owning the blob.
func (s *Sharded) ShardOf(blob uint64) int { return ShardIndex(blob, len(s.shards)) }

// Shard exposes one shard's Manager — the fault-injection seam the
// torture suite kills and restarts.
func (s *Sharded) Shard(i int) *Manager { return s.shards[i] }

// KillShard kills one shard; the others keep serving.
func (s *Sharded) KillShard(i int) { s.shards[i].Kill() }

// RestartShard restarts one shard, returning the versions it
// recovery-aborted (see Manager.Restart).
func (s *Sharded) RestartShard(i int) []VersionRef { return s.shards[i].Restart() }

// ShardStatuses reports every shard's status, in shard order.
func (s *Sharded) ShardStatuses() []ShardStatus {
	out := make([]ShardStatus, len(s.shards))
	for i, m := range s.shards {
		out[i] = m.Status(i)
	}
	return out
}

// SetBatching configures group commit on every shard.
func (s *Sharded) SetBatching(cfg BatchConfig) {
	for _, m := range s.shards {
		m.SetBatching(cfg)
	}
}

// Batching returns the group-commit configuration shared by every
// shard. SetBatching applies one config pool-wide, so divergence is
// only reachable by configuring a shard behind Shard(i) directly —
// that breaks the uniformity the batch router's splitting assumes, so
// Batching panics rather than silently reporting shard 0's view as the
// pool's.
func (s *Sharded) Batching() BatchConfig {
	cfg := s.shards[0].Batching()
	for i, m := range s.shards[1:] {
		if got := m.Batching(); got != cfg {
			panic(fmt.Sprintf("vmanager: shard %d batching %+v diverges from shard 0 %+v (configure via Sharded.SetBatching, not Shard(i))", i+1, got, cfg))
		}
	}
	return cfg
}

// SetMetrics wires every shard into the registry. A single shard keeps
// the unlabeled bs_vm_* series (identical to a lone Manager, so
// dashboards and assertions built before sharding keep working); with
// more shards each gets a shard=<i> label — new series under the
// existing names, no renames.
func (s *Sharded) SetMetrics(reg *metrics.Registry) {
	if len(s.shards) == 1 {
		s.shards[0].SetMetrics(reg)
		return
	}
	for i, m := range s.shards {
		m.SetMetrics(reg, metrics.Label{Key: "shard", Value: strconv.Itoa(i)})
	}
}

// Blobs returns the IDs of all registered blobs across all shards.
func (s *Sharded) Blobs() []uint64 {
	var out []uint64
	for _, m := range s.shards {
		out = append(out, m.Blobs()...)
	}
	return out
}

// --- VersionService: every call routes to the blob's owning shard ---

func (s *Sharded) route(blob uint64) *Manager { return s.shards[s.ShardOf(blob)] }

func (s *Sharded) CreateBlob(blob uint64, geo segtree.Geometry) error {
	return s.route(blob).CreateBlob(blob, geo)
}

func (s *Sharded) Geometry(blob uint64) (segtree.Geometry, error) {
	return s.route(blob).Geometry(blob)
}

func (s *Sharded) AssignTicket(blob uint64, e extent.List) (Ticket, error) {
	return s.route(blob).AssignTicket(blob, e)
}

func (s *Sharded) Complete(blob, v uint64, root segtree.NodeKey) error {
	return s.route(blob).Complete(blob, v, root)
}

func (s *Sharded) Abort(blob, v uint64) error { return s.route(blob).Abort(blob, v) }

func (s *Sharded) WaitPublished(blob, v uint64) error { return s.route(blob).WaitPublished(blob, v) }

func (s *Sharded) LatestPublished(blob uint64) (SnapshotInfo, error) {
	return s.route(blob).LatestPublished(blob)
}

func (s *Sharded) Snapshot(blob, v uint64) (SnapshotInfo, error) {
	return s.route(blob).Snapshot(blob, v)
}

func (s *Sharded) Versions(blob uint64) ([]uint64, error) { return s.route(blob).Versions(blob) }

func (s *Sharded) Retain(blob uint64, keepLast int) ([]uint64, error) {
	return s.route(blob).Retain(blob, keepLast)
}

func (s *Sharded) DropVersion(blob, v uint64) error { return s.route(blob).DropVersion(blob, v) }

func (s *Sharded) Pin(blob, v uint64) error { return s.route(blob).Pin(blob, v) }

func (s *Sharded) Unpin(blob, v uint64) error { return s.route(blob).Unpin(blob, v) }

func (s *Sharded) GCInfo(blob uint64) (GCInfo, error) { return s.route(blob).GCInfo(blob) }

func (s *Sharded) MarkReclaimed(blob, v uint64) error { return s.route(blob).MarkReclaimed(blob, v) }

// --- Batch entry points: split per shard, dispatch concurrently,
// re-stitch in request order ---

// AssignTicketBatch splits the batch by owning shard, runs each
// sub-batch on its shard concurrently, and returns the results in the
// original request order. Requests for the same shard keep their
// relative order, so same-blob requests still receive contiguous
// versions and borrow answers reflecting their batch predecessors —
// the per-shard contract is exactly AssignTicketBatch on a lone
// Manager.
func (s *Sharded) AssignTicketBatch(reqs []TicketRequest) []TicketResult {
	out := make([]TicketResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if len(s.shards) == 1 {
		return s.shards[0].AssignTicketBatch(reqs)
	}
	byShard := s.splitIndices(len(reqs), func(i int) uint64 { return reqs[i].Blob })
	var wg sync.WaitGroup
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(m *Manager, idxs []int) {
			defer wg.Done()
			sub := make([]TicketRequest, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			for j, r := range m.AssignTicketBatch(sub) {
				out[idxs[j]] = r
			}
		}(s.shards[shard], idxs)
	}
	wg.Wait()
	return out
}

// CompleteBatch is the publish-side twin of AssignTicketBatch: split,
// dispatch concurrently, re-stitch. A shard dying mid-sub-batch fails
// only that shard's requests (all of them, atomically — see
// Manager.CompleteBatch); requests routed to healthy shards are
// unaffected.
func (s *Sharded) CompleteBatch(reqs []PublishRequest) []error {
	out := make([]error, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	if len(s.shards) == 1 {
		return s.shards[0].CompleteBatch(reqs)
	}
	byShard := s.splitIndices(len(reqs), func(i int) uint64 { return reqs[i].Blob })
	var wg sync.WaitGroup
	for shard, idxs := range byShard {
		if len(idxs) == 0 {
			continue
		}
		wg.Add(1)
		go func(m *Manager, idxs []int) {
			defer wg.Done()
			sub := make([]PublishRequest, len(idxs))
			for j, i := range idxs {
				sub[j] = reqs[i]
			}
			for j, err := range m.CompleteBatch(sub) {
				out[idxs[j]] = err
			}
		}(s.shards[shard], idxs)
	}
	wg.Wait()
	return out
}

// splitIndices groups request indices [0, n) by owning shard, keeping
// each group in ascending (request) order.
func (s *Sharded) splitIndices(n int, blobOf func(int) uint64) [][]int {
	byShard := make([][]int, len(s.shards))
	for i := 0; i < n; i++ {
		sh := s.ShardOf(blobOf(i))
		byShard[sh] = append(byShard[sh], i)
	}
	return byShard
}
