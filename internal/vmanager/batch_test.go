package vmanager

import (
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

func newTestManager(t *testing.T, cfg BatchConfig) *Manager {
	t.Helper()
	m := New(iosim.CostModel{})
	m.SetBatching(cfg)
	if err := m.CreateBlob(1, segtree.Geometry{Capacity: 1 << 20, Page: 1 << 12}); err != nil {
		t.Fatalf("CreateBlob: %v", err)
	}
	return m
}

func ext(off, length int64) extent.List {
	return extent.List{{Offset: off, Length: length}}
}

// Concurrent batched writers must receive dense, unique tickets and
// publish cleanly, for every batch size.
func TestBatchedAssignCompleteConcurrent(t *testing.T) {
	for _, mb := range []int{1, 8, 64} {
		t.Run(fmt.Sprintf("maxbatch=%d", mb), func(t *testing.T) {
			m := newTestManager(t, BatchConfig{MaxBatch: mb, MaxDelay: 100 * time.Microsecond})
			const writers = 32
			versions := make([]uint64, writers)
			var wg sync.WaitGroup
			for w := 0; w < writers; w++ {
				wg.Add(1)
				go func(w int) {
					defer wg.Done()
					tk, err := m.AssignTicket(1, ext(int64(w)*100, 200))
					if err != nil {
						t.Errorf("AssignTicket: %v", err)
						return
					}
					versions[w] = tk.Version
					if err := m.Complete(1, tk.Version, segtree.NodeKey{Version: tk.Version}); err != nil {
						t.Errorf("Complete: %v", err)
						return
					}
					if err := m.WaitPublished(1, tk.Version); err != nil {
						t.Errorf("WaitPublished: %v", err)
					}
				}(w)
			}
			wg.Wait()
			seen := make(map[uint64]bool)
			for _, v := range versions {
				if v == 0 || v > writers || seen[v] {
					t.Fatalf("tickets not dense/unique: %v", versions)
				}
				seen[v] = true
			}
			info, err := m.LatestPublished(1)
			if err != nil {
				t.Fatalf("LatestPublished: %v", err)
			}
			if info.Version != writers {
				t.Fatalf("published %d, want %d", info.Version, writers)
			}
		})
	}
}

// Borrow answers inside one group must reflect earlier group members:
// a batched assign over the same range must chain borrows exactly like
// sequential unbatched assigns.
func TestBatchedBorrowsSeeEarlierGroupMembers(t *testing.T) {
	m := newTestManager(t, BatchConfig{})
	reqs := make([]TicketRequest, 4)
	for i := range reqs {
		reqs[i] = TicketRequest{Blob: 1, Extents: ext(0, 1<<12)}
	}
	res := m.AssignTicketBatch(reqs)
	for i, r := range res {
		if r.Err != nil {
			t.Fatalf("req %d: %v", i, r.Err)
		}
		if r.Ticket.Version != uint64(i+1) {
			t.Fatalf("req %d: version %d, want %d", i, r.Ticket.Version, i+1)
		}
		var max uint64
		for _, b := range r.Ticket.Borrows {
			if b > max {
				max = b
			}
		}
		if want := uint64(i); max != want {
			t.Fatalf("req %d: max borrow %d, want %d", i, max, want)
		}
	}
}

// A bad request inside a batch must fail alone, without poisoning its
// peers or consuming a ticket.
func TestBatchPartialFailure(t *testing.T) {
	m := newTestManager(t, BatchConfig{})
	res := m.AssignTicketBatch([]TicketRequest{
		{Blob: 1, Extents: ext(0, 100)},
		{Blob: 99, Extents: ext(0, 100)},    // unknown blob
		{Blob: 1, Extents: nil},             // empty write
		{Blob: 1, Extents: ext(1<<20, 100)}, // beyond capacity
		{Blob: 1, Extents: ext(50, 100)},    // fine again
	})
	if res[0].Err != nil || res[4].Err != nil {
		t.Fatalf("good requests failed: %v, %v", res[0].Err, res[4].Err)
	}
	if !errors.Is(res[1].Err, ErrUnknownBlob) {
		t.Fatalf("req 1: %v, want ErrUnknownBlob", res[1].Err)
	}
	if !errors.Is(res[2].Err, ErrEmptyWrite) {
		t.Fatalf("req 2: %v, want ErrEmptyWrite", res[2].Err)
	}
	if !errors.Is(res[3].Err, segtree.ErrOutOfRange) {
		t.Fatalf("req 3: %v, want ErrOutOfRange", res[3].Err)
	}
	if res[0].Ticket.Version != 1 || res[4].Ticket.Version != 2 {
		t.Fatalf("good requests got versions %d, %d; want contiguous 1, 2",
			res[0].Ticket.Version, res[4].Ticket.Version)
	}

	errs := m.CompleteBatch([]PublishRequest{
		{Blob: 1, Version: 1, Root: segtree.NodeKey{Version: 1}},
		{Blob: 1, Version: 7},              // unassigned
		{Blob: 1, Version: 2, Abort: true}, // abort mid-batch
		{Blob: 1, Version: 1},              // double complete
	})
	if errs[0] != nil {
		t.Fatalf("complete 1: %v", errs[0])
	}
	if errs[1] == nil {
		t.Fatal("complete of unassigned version succeeded")
	}
	if errs[2] != nil {
		t.Fatalf("abort 2: %v", errs[2])
	}
	if !errors.Is(errs[3], ErrDoubleComplete) {
		t.Fatalf("double complete: %v, want ErrDoubleComplete", errs[3])
	}
	info, err := m.LatestPublished(1)
	if err != nil {
		t.Fatalf("LatestPublished: %v", err)
	}
	if info.Version != 2 {
		t.Fatalf("published %d, want 2 (aborted version publishes empty)", info.Version)
	}
	// The aborted version resolves to its predecessor's root.
	s1, _ := m.Snapshot(1, 1)
	s2, _ := m.Snapshot(1, 2)
	if s2.Root != s1.Root {
		t.Fatalf("aborted snapshot root %v != predecessor %v", s2.Root, s1.Root)
	}
}

// The batched path must surface per-request errors through the regular
// AssignTicket/Complete API too.
func TestBatchedPathSurfacesErrors(t *testing.T) {
	m := newTestManager(t, BatchConfig{MaxBatch: 8, MaxDelay: time.Millisecond})
	if _, err := m.AssignTicket(42, ext(0, 100)); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("AssignTicket unknown blob: %v", err)
	}
	if err := m.Complete(1, 9, segtree.NodeKey{}); err == nil {
		t.Fatal("Complete of unassigned version succeeded")
	}
	if err := m.Abort(1, 9); err == nil {
		t.Fatal("Abort of unassigned version succeeded")
	}
	tk, err := m.AssignTicket(1, ext(0, 100))
	if err != nil {
		t.Fatalf("AssignTicket: %v", err)
	}
	if err := m.Abort(1, tk.Version); err != nil {
		t.Fatalf("Abort: %v", err)
	}
	if err := m.WaitPublished(1, tk.Version); err != nil {
		t.Fatalf("WaitPublished after abort: %v", err)
	}
}

// A group leader must not linger past MaxDelay when the group does not
// fill: a lone batched request must still complete promptly.
func TestBatchedLoneRequestCompletes(t *testing.T) {
	m := newTestManager(t, BatchConfig{MaxBatch: 64, MaxDelay: 5 * time.Millisecond})
	start := time.Now()
	tk, err := m.AssignTicket(1, ext(0, 100))
	if err != nil {
		t.Fatalf("AssignTicket: %v", err)
	}
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("lone batched request took %v", elapsed)
	}
	if err := m.Complete(1, tk.Version, segtree.NodeKey{}); err != nil {
		t.Fatalf("Complete: %v", err)
	}
	if err := m.WaitPublished(1, tk.Version); err != nil {
		t.Fatalf("WaitPublished: %v", err)
	}
}

// One metered control round trip per group: with batching the manager's
// op count must drop roughly by the batch size.
func TestBatchingAmortizesMeterOps(t *testing.T) {
	run := func(cfg BatchConfig) int64 {
		m := New(iosim.CostModel{})
		m.SetBatching(cfg)
		if err := m.CreateBlob(1, segtree.Geometry{Capacity: 1 << 20, Page: 1 << 12}); err != nil {
			t.Fatalf("CreateBlob: %v", err)
		}
		m.Meter().Reset()
		const writers = 64
		var wg sync.WaitGroup
		for w := 0; w < writers; w++ {
			wg.Add(1)
			go func(w int) {
				defer wg.Done()
				tk, err := m.AssignTicket(1, ext(int64(w)*10, 10))
				if err != nil {
					t.Errorf("AssignTicket: %v", err)
					return
				}
				if err := m.Complete(1, tk.Version, segtree.NodeKey{}); err != nil {
					t.Errorf("Complete: %v", err)
				}
			}(w)
		}
		wg.Wait()
		return m.Meter().Stats().Ops
	}
	unbatched := run(BatchConfig{})
	batched := run(BatchConfig{MaxBatch: 64, MaxDelay: 2 * time.Millisecond})
	if unbatched != 128 {
		t.Fatalf("unbatched ops = %d, want 128 (one per assign + one per complete)", unbatched)
	}
	if batched >= unbatched {
		t.Fatalf("batched ops = %d, not amortized below unbatched %d", batched, unbatched)
	}
}
