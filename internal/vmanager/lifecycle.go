package vmanager

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/segtree"
)

// Version lifecycle: published snapshots are no longer immortal. A
// published version moves through three states:
//
//	retained  — readable; the default state of every published version.
//	dropped   — removed from the readable set by DropVersion or Retain;
//	            its root is kept pending so the garbage collector can
//	            compute which chunks became unreferenced.
//	reclaimed — the collector confirmed the version's exclusively
//	            referenced chunks were deleted; the manager forgets the
//	            root (MarkReclaimed).
//
// Protections: the latest published version and version 0 are never
// droppable, and a version pinned by a reader (Pin/Unpin, counted) is
// skipped by Retain and refused by DropVersion. Dropping is a metadata
// operation only — the version's segment-tree nodes stay in the
// metadata store because later versions may have borrowed them
// (shadowing), and its chunks stay on the providers until the reaper
// proves no retained version can reach them (see core.Reaper and
// segtree.ExclusiveChunks).
var (
	// ErrVersionDropped is returned when a dropped version is read,
	// pinned, or dropped twice.
	ErrVersionDropped = errors.New("vmanager: version dropped")
	// ErrVersionPinned is returned by DropVersion for a pinned version.
	ErrVersionPinned = errors.New("vmanager: version pinned")
	// ErrUndroppable is returned for versions that must always survive:
	// version 0 and the latest published snapshot.
	ErrUndroppable = errors.New("vmanager: version not droppable")
	// ErrNotPinned is returned by Unpin without a matching Pin.
	ErrNotPinned = errors.New("vmanager: version not pinned")
	// ErrNotPending is returned by MarkReclaimed for a version that is
	// not awaiting reclamation.
	ErrNotPending = errors.New("vmanager: version not pending reclamation")
)

// PendingDrop describes one dropped version awaiting chunk
// reclamation: the collector needs its root (to walk its refs) and its
// size (bookkeeping only; the walk is size-free).
type PendingDrop struct {
	Version uint64
	Root    segtree.NodeKey
	Size    int64
}

// GCInfo is the lifecycle snapshot the garbage collector plans a pass
// from: which versions are retained (and so protect every chunk their
// trees reach) and which dropped versions still await reclamation.
type GCInfo struct {
	Published uint64        // newest published version
	Retained  []uint64      // published, not dropped (includes 0), ascending
	Pending   []PendingDrop // dropped, not yet reclaimed, ascending
	Pinned    []uint64      // currently pinned versions, ascending
	Reclaimed uint64        // versions fully reclaimed so far
}

// Pin protects a published version from DropVersion and Retain until a
// matching Unpin, so a reader can hold a snapshot open across
// retention passes. Pins are counted: concurrent readers of the same
// version each pin it.
func (m *Manager) Pin(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v > st.published {
		return fmt.Errorf("%w: %d (published %d)", ErrUnknownVersion, v, st.published)
	}
	if st.dropped[v] {
		return fmt.Errorf("%w: %d", ErrVersionDropped, v)
	}
	st.pins[v]++
	return nil
}

// Unpin releases one Pin of the version.
func (m *Manager) Unpin(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if st.pins[v] == 0 {
		return fmt.Errorf("%w: %d", ErrNotPinned, v)
	}
	st.pins[v]--
	if st.pins[v] == 0 {
		delete(st.pins, v)
	}
	return nil
}

// DropVersion removes one published version from the readable set and
// queues it for chunk reclamation. Version 0, the latest published
// version, and pinned versions are refused; dropping twice fails with
// ErrVersionDropped.
func (m *Manager) DropVersion(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	return st.dropLocked(v)
}

// dropLocked applies the drop rules to one version; callers hold m.mu.
func (st *blobState) dropLocked(v uint64) error {
	if v > st.published {
		return fmt.Errorf("%w: %d (published %d)", ErrUnknownVersion, v, st.published)
	}
	if v == 0 || v == st.published {
		return fmt.Errorf("%w: %d", ErrUndroppable, v)
	}
	if st.pins[v] > 0 {
		return fmt.Errorf("%w: %d (%d pins)", ErrVersionPinned, v, st.pins[v])
	}
	if st.dropped[v] {
		return fmt.Errorf("%w: %d", ErrVersionDropped, v)
	}
	st.dropped[v] = true
	st.pending[v] = true
	return nil
}

// Retain applies the retention policy: every published version older
// than the newest keepLast is dropped, except version 0, pinned
// versions, and versions already dropped. It returns the versions
// newly dropped by this call, ascending. keepLast must be >= 1 (the
// latest published version is always retained).
func (m *Manager) Retain(blob uint64, keepLast int) ([]uint64, error) {
	if keepLast < 1 {
		return nil, fmt.Errorf("vmanager: Retain needs keepLast >= 1, got %d", keepLast)
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if st.published <= uint64(keepLast) {
		return nil, nil
	}
	var droppedNow []uint64
	for v := uint64(1); v <= st.published-uint64(keepLast); v++ {
		if st.dropped[v] || st.pins[v] > 0 {
			continue
		}
		if err := st.dropLocked(v); err != nil {
			return droppedNow, err
		}
		droppedNow = append(droppedNow, v)
	}
	return droppedNow, nil
}

// GCInfo returns the blob's lifecycle snapshot for a collector pass.
func (m *Manager) GCInfo(blob uint64) (GCInfo, error) {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return GCInfo{}, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return GCInfo{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	info := GCInfo{Published: st.published, Reclaimed: st.reclaimed}
	for v := uint64(0); v <= st.published; v++ {
		if !st.dropped[v] {
			info.Retained = append(info.Retained, v)
		}
	}
	for v := range st.pending {
		info.Pending = append(info.Pending, PendingDrop{Version: v, Root: st.roots[v], Size: st.sizes[v]})
	}
	sort.Slice(info.Pending, func(i, j int) bool { return info.Pending[i].Version < info.Pending[j].Version })
	for v := range st.pins {
		info.Pinned = append(info.Pinned, v)
	}
	sort.Slice(info.Pinned, func(i, j int) bool { return info.Pinned[i] < info.Pinned[j] })
	return info, nil
}

// MarkReclaimed records that the collector deleted every chunk
// exclusively referenced by a pending dropped version; the manager
// forgets the version's root and size. Only versions reported in
// GCInfo.Pending may be marked.
func (m *Manager) MarkReclaimed(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if !st.pending[v] {
		return fmt.Errorf("%w: %d", ErrNotPending, v)
	}
	delete(st.pending, v)
	delete(st.roots, v)
	delete(st.sizes, v)
	delete(st.completed, v)
	delete(st.aborted, v)
	st.reclaimed++
	return nil
}
