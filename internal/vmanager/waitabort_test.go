package vmanager

import (
	"errors"
	"testing"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

// waitResult runs WaitPublished(blob=1, v) in a goroutine and returns
// a channel carrying its result, so tests can assert both "woke with
// X" and "did not hang".
func waitResult(m *Manager, v uint64) <-chan error {
	done := make(chan error, 1)
	go func() { done <- m.WaitPublished(1, v) }()
	return done
}

func mustWake(t *testing.T, done <-chan error) error {
	t.Helper()
	select {
	case err := <-done:
		return err
	case <-time.After(5 * time.Second):
		t.Fatal("WaitPublished still blocked; abort did not wake the waiter")
		return nil
	}
}

// TestWaitPublishedWakesOnAbort: a waiter blocked on a version that is
// then aborted must wake with nil — the abort publishes the version as
// an empty snapshot, and a waiter left sleeping on it would deadlock
// every writer whose predecessor died.
func TestWaitPublishedWakesOnAbort(t *testing.T) {
	m := newMgr(t)
	tk, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	if err != nil {
		t.Fatal(err)
	}
	done := waitResult(m, tk.Version)
	time.Sleep(10 * time.Millisecond) // let the waiter block
	if err := m.Abort(1, tk.Version); err != nil {
		t.Fatal(err)
	}
	if err := mustWake(t, done); err != nil {
		t.Fatalf("waiter on aborted version woke with %v, want nil", err)
	}
}

// TestWaitPublishedAbortUnblocksSuccessor: a waiter on a completed
// version blocked behind an earlier in-flight ticket must wake when
// that earlier ticket aborts.
func TestWaitPublishedAbortUnblocksSuccessor(t *testing.T) {
	m := newMgr(t)
	t1, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	t2, _ := m.AssignTicket(1, extent.List{{Offset: 64, Length: 64}})
	if err := m.Complete(1, t2.Version, segtree.NodeKey{Version: t2.Version, Offset: 0, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	done := waitResult(m, t2.Version)
	time.Sleep(10 * time.Millisecond)
	if err := m.Abort(1, t1.Version); err != nil {
		t.Fatal(err)
	}
	if err := mustWake(t, done); err != nil {
		t.Fatalf("waiter behind aborted predecessor woke with %v, want nil", err)
	}
}

// TestWaitPublishedWakesOnBatchedAbort: same contract through the
// group-commit path — an abort applied by CompleteBatch must broadcast
// to waiters exactly like the unbatched path.
func TestWaitPublishedWakesOnBatchedAbort(t *testing.T) {
	m := newMgr(t)
	tk, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	if err != nil {
		t.Fatal(err)
	}
	done := waitResult(m, tk.Version)
	time.Sleep(10 * time.Millisecond)
	errs := m.CompleteBatch([]PublishRequest{{Blob: 1, Version: tk.Version, Abort: true}})
	if errs[0] != nil {
		t.Fatal(errs[0])
	}
	if err := mustWake(t, done); err != nil {
		t.Fatalf("waiter woke with %v after batched abort, want nil", err)
	}
}

// TestWaitPublishedWakesOnKill: killing the manager must wake blocked
// waiters with ErrShardDown rather than stranding them, and a version
// that already published stays reported as published even when the
// manager is down (ErrShardDown strictly means "not committed").
func TestWaitPublishedWakesOnKill(t *testing.T) {
	m := newMgr(t)
	t1, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	if err := m.Complete(1, t1.Version, segtree.NodeKey{Version: t1.Version, Offset: 0, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	t2, _ := m.AssignTicket(1, extent.List{{Offset: 64, Length: 64}})
	done := waitResult(m, t2.Version)
	time.Sleep(10 * time.Millisecond)
	m.Kill()
	if err := mustWake(t, done); !errors.Is(err, ErrShardDown) {
		t.Fatalf("waiter on killed manager woke with %v, want ErrShardDown", err)
	}
	if err := m.WaitPublished(1, t1.Version); err != nil {
		t.Fatalf("published version reported %v on a down manager, want nil", err)
	}
}

// TestWaitPublishedWakesOnRestartRecovery: a waiter blocked across a
// kill/restart cycle is woken by the kill; a fresh waiter after
// Restart sees the recovery abort as published.
func TestWaitPublishedWakesOnRestartRecovery(t *testing.T) {
	m := New(iosim.CostModel{})
	if err := m.CreateBlob(1, segtree.Geometry{Capacity: 1024, Page: 64}); err != nil {
		t.Fatal(err)
	}
	tk, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	m.Kill()
	aborted := m.Restart()
	if len(aborted) != 1 || aborted[0] != (VersionRef{Blob: 1, Version: tk.Version}) {
		t.Fatalf("restart aborted %v, want [{1 %d}]", aborted, tk.Version)
	}
	if err := mustWake(t, waitResult(m, tk.Version)); err != nil {
		t.Fatalf("recovery-aborted version waits with %v, want nil (published as empty)", err)
	}
}
