package vmanager

import (
	"errors"
	"math/rand"
	"sync"
	"testing"
	"testing/quick"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

func geo() segtree.Geometry {
	return segtree.Geometry{Capacity: 1024, Page: 64}
}

func newMgr(t *testing.T) *Manager {
	t.Helper()
	m := New(iosim.CostModel{})
	if err := m.CreateBlob(1, geo()); err != nil {
		t.Fatal(err)
	}
	return m
}

func TestCreateBlob(t *testing.T) {
	m := newMgr(t)
	if err := m.CreateBlob(1, geo()); !errors.Is(err, ErrBlobExists) {
		t.Fatalf("duplicate create err = %v", err)
	}
	if err := m.CreateBlob(2, segtree.Geometry{Capacity: 100, Page: 64}); err == nil {
		t.Fatal("invalid geometry must be rejected")
	}
	g, err := m.Geometry(1)
	if err != nil || g != geo() {
		t.Fatalf("Geometry = %v, %v", g, err)
	}
	if _, err := m.Geometry(9); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("unknown blob err = %v", err)
	}
}

func TestAssignTicketSequence(t *testing.T) {
	m := newMgr(t)
	for want := uint64(1); want <= 5; want++ {
		tk, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
		if err != nil {
			t.Fatal(err)
		}
		if tk.Version != want {
			t.Fatalf("ticket = %d, want %d", tk.Version, want)
		}
	}
}

func TestAssignTicketValidation(t *testing.T) {
	m := newMgr(t)
	if _, err := m.AssignTicket(1, nil); !errors.Is(err, ErrEmptyWrite) {
		t.Fatalf("empty write err = %v", err)
	}
	if _, err := m.AssignTicket(1, extent.List{{Offset: 1000, Length: 100}}); !errors.Is(err, segtree.ErrOutOfRange) {
		t.Fatalf("out of range err = %v", err)
	}
	if _, err := m.AssignTicket(9, extent.List{{Offset: 0, Length: 1}}); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("unknown blob err = %v", err)
	}
}

func TestBorrowsReflectPriorTickets(t *testing.T) {
	m := newMgr(t)
	// Ticket 1 writes page 0 ([0,64)).
	tk1, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if len(tk1.Borrows) != 0 {
		t.Fatalf("first write should borrow nothing, got %v", tk1.Borrows)
	}
	// Ticket 2 writes page 1 ([64,128)); its borrows must name ticket 1
	// for the ranges covering page 0, and the touched leaf [64,128)
	// must have no borrow entry (never written).
	tk2, err := m.AssignTicket(1, extent.List{{Offset: 64, Length: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tk2.Borrows[extent.Extent{Offset: 0, Length: 64}]; got != 1 {
		t.Fatalf("borrow for page 0 = %d, want 1", got)
	}
	if _, ok := tk2.Borrows[extent.Extent{Offset: 64, Length: 64}]; ok {
		t.Fatal("untouched leaf should have no borrow entry")
	}
	// Ticket 3 rewrites page 0: the touched-leaf borrow must be 1.
	tk3, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	if err != nil {
		t.Fatal(err)
	}
	if got := tk3.Borrows[extent.Extent{Offset: 0, Length: 64}]; got != 1 {
		t.Fatalf("touched-leaf borrow = %d, want 1", got)
	}
	// And the sibling subtree [64,128) must be borrowed from ticket 2.
	if got := tk3.Borrows[extent.Extent{Offset: 64, Length: 64}]; got != 2 {
		t.Fatalf("sibling borrow = %d, want 2", got)
	}
}

func TestCompletePublishesInOrder(t *testing.T) {
	m := newMgr(t)
	t1, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	t2, _ := m.AssignTicket(1, extent.List{{Offset: 64, Length: 64}})
	root2 := segtree.NodeKey{Version: t2.Version, Offset: 0, Size: 1024}
	// Completing ticket 2 first must NOT publish it.
	if err := m.Complete(1, t2.Version, root2); err != nil {
		t.Fatal(err)
	}
	info, _ := m.LatestPublished(1)
	if info.Version != 0 {
		t.Fatalf("published = %d before ticket 1 completed", info.Version)
	}
	root1 := segtree.NodeKey{Version: t1.Version, Offset: 0, Size: 1024}
	if err := m.Complete(1, t1.Version, root1); err != nil {
		t.Fatal(err)
	}
	info, _ = m.LatestPublished(1)
	if info.Version != 2 || info.Root != root2 {
		t.Fatalf("published = %+v, want version 2", info)
	}
}

func TestCompleteErrors(t *testing.T) {
	m := newMgr(t)
	tk, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
	if err := m.Complete(1, 99, segtree.NodeKey{}); err == nil {
		t.Fatal("completing unassigned version must fail")
	}
	if err := m.Complete(1, tk.Version, segtree.NodeKey{Version: tk.Version, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := m.Complete(1, tk.Version, segtree.NodeKey{}); !errors.Is(err, ErrDoubleComplete) {
		t.Fatalf("double complete err = %v", err)
	}
	if err := m.Complete(9, 1, segtree.NodeKey{}); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("unknown blob err = %v", err)
	}
}

func TestSnapshotSizes(t *testing.T) {
	m := newMgr(t)
	t1, _ := m.AssignTicket(1, extent.List{{Offset: 100, Length: 50}}) // size 150
	t2, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})   // size stays 150
	m.Complete(1, t1.Version, segtree.NodeKey{Version: 1, Size: 1024})
	m.Complete(1, t2.Version, segtree.NodeKey{Version: 2, Size: 1024})
	s1, err := m.Snapshot(1, 1)
	if err != nil || s1.Size != 150 {
		t.Fatalf("snapshot 1 = %+v, %v", s1, err)
	}
	s2, err := m.Snapshot(1, 2)
	if err != nil || s2.Size != 150 {
		t.Fatalf("snapshot 2 = %+v, %v", s2, err)
	}
	s0, err := m.Snapshot(1, 0)
	if err != nil || s0.Size != 0 || !s0.Root.IsZero() {
		t.Fatalf("snapshot 0 = %+v, %v", s0, err)
	}
}

func TestSnapshotUnpublished(t *testing.T) {
	m := newMgr(t)
	m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
	if _, err := m.Snapshot(1, 1); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("unpublished snapshot err = %v", err)
	}
}

func TestWaitPublished(t *testing.T) {
	m := newMgr(t)
	tk, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
	done := make(chan error, 1)
	go func() {
		done <- m.WaitPublished(1, tk.Version)
	}()
	// Publication unblocks the waiter.
	if err := m.Complete(1, tk.Version, segtree.NodeKey{Version: 1, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	// Waiting for an already-published version returns immediately.
	if err := m.WaitPublished(1, tk.Version); err != nil {
		t.Fatal(err)
	}
	if err := m.WaitPublished(1, 99); err == nil {
		t.Fatal("waiting for unassigned version must fail")
	}
}

func TestVersionsAndBlobs(t *testing.T) {
	m := newMgr(t)
	tk, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
	m.Complete(1, tk.Version, segtree.NodeKey{Version: 1, Size: 1024})
	vs, err := m.Versions(1)
	if err != nil || len(vs) != 2 || vs[0] != 0 || vs[1] != 1 {
		t.Fatalf("Versions = %v, %v", vs, err)
	}
	if ids := m.Blobs(); len(ids) != 1 || ids[0] != 1 {
		t.Fatalf("Blobs = %v", ids)
	}
}

func TestConcurrentTicketsUniqueAndDense(t *testing.T) {
	m := newMgr(t)
	const n = 100
	var mu sync.Mutex
	seen := make(map[uint64]bool)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			tk, err := m.AssignTicket(1, extent.List{{Offset: int64(i % 16 * 64), Length: 64}})
			if err != nil {
				t.Error(err)
				return
			}
			mu.Lock()
			if seen[tk.Version] {
				t.Errorf("duplicate ticket %d", tk.Version)
			}
			seen[tk.Version] = true
			mu.Unlock()
		}(i)
	}
	wg.Wait()
	for v := uint64(1); v <= n; v++ {
		if !seen[v] {
			t.Fatalf("ticket %d never assigned", v)
		}
	}
}

func TestConcurrentCompleteOutOfOrder(t *testing.T) {
	m := newMgr(t)
	const n = 50
	tickets := make([]Ticket, n)
	for i := range tickets {
		tk, err := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
		if err != nil {
			t.Fatal(err)
		}
		tickets[i] = tk
	}
	// Complete in random order from many goroutines.
	r := rand.New(rand.NewSource(7))
	perm := r.Perm(n)
	var wg sync.WaitGroup
	for _, i := range perm {
		wg.Add(1)
		go func(tk Ticket) {
			defer wg.Done()
			root := segtree.NodeKey{Version: tk.Version, Offset: 0, Size: 1024}
			if err := m.Complete(1, tk.Version, root); err != nil {
				t.Error(err)
			}
		}(tickets[i])
	}
	wg.Wait()
	info, _ := m.LatestPublished(1)
	if info.Version != n {
		t.Fatalf("published = %d, want %d", info.Version, n)
	}
}

func TestPageTreeBasics(t *testing.T) {
	pt := newPageTree(100) // rounds to 128
	if got := pt.query(0, 128); got != 0 {
		t.Fatalf("empty tree query = %d", got)
	}
	pt.stamp(10, 20, 1)
	pt.stamp(30, 40, 2)
	cases := []struct {
		lo, hi int64
		want   uint64
	}{
		{0, 5, 0},
		{10, 15, 1},
		{15, 35, 2},
		{35, 128, 2},
		{40, 128, 0},
		{0, 128, 2},
		{19, 20, 1},
		{20, 30, 0},
	}
	for i, c := range cases {
		if got := pt.query(c.lo, c.hi); got != c.want {
			t.Fatalf("case %d: query(%d,%d) = %d, want %d", i, c.lo, c.hi, got, c.want)
		}
	}
	// Later versions override earlier ones.
	pt.stamp(5, 35, 3)
	if got := pt.query(12, 13); got != 3 {
		t.Fatalf("after overwrite query = %d, want 3", got)
	}
	if got := pt.query(35, 40); got != 2 {
		t.Fatalf("right remainder query = %d, want 2", got)
	}
}

func TestPageTreeBoundsClamped(t *testing.T) {
	pt := newPageTree(16)
	pt.stamp(-5, 100, 7) // clamps to [0,16)
	if got := pt.query(-3, 200); got != 7 {
		t.Fatalf("clamped query = %d", got)
	}
	pt.stamp(5, 5, 9) // empty range is a no-op
	if got := pt.query(0, 16); got != 7 {
		t.Fatalf("after empty stamp = %d", got)
	}
}

// TestPropPageTreeMatchesBruteForce cross-checks the lazy segment tree
// against a flat-array oracle under random monotone stamps.
func TestPropPageTreeMatchesBruteForce(t *testing.T) {
	const pages = 256
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		pt := newPageTree(pages)
		oracle := make([]uint64, pages)
		for v := uint64(1); v <= 40; v++ {
			lo := int64(r.Intn(pages))
			hi := lo + int64(r.Intn(pages-int(lo))+1)
			pt.stamp(lo, hi, v)
			for i := lo; i < hi; i++ {
				oracle[i] = v
			}
		}
		for probe := 0; probe < 60; probe++ {
			lo := int64(r.Intn(pages))
			hi := lo + int64(r.Intn(pages-int(lo))+1)
			var want uint64
			for i := lo; i < hi; i++ {
				if oracle[i] > want {
					want = oracle[i]
				}
			}
			if pt.query(lo, hi) != want {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestAbortUnblocksPublication(t *testing.T) {
	m := newMgr(t)
	t1, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 64}})
	t2, _ := m.AssignTicket(1, extent.List{{Offset: 64, Length: 64}})
	root2 := segtree.NodeKey{Version: t2.Version, Offset: 0, Size: 1024}
	if err := m.Complete(1, t2.Version, root2); err != nil {
		t.Fatal(err)
	}
	// Ticket 1 failed; abort it.
	if err := m.Abort(1, t1.Version); err != nil {
		t.Fatal(err)
	}
	info, _ := m.LatestPublished(1)
	if info.Version != 2 {
		t.Fatalf("published = %d, want 2 (abort must unblock)", info.Version)
	}
	// The aborted snapshot resolves to its predecessor's root (empty).
	s1, err := m.Snapshot(1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !s1.Root.IsZero() || s1.Size != 0 {
		t.Fatalf("aborted snapshot = %+v, want predecessor's state", s1)
	}
}

func TestAbortValidation(t *testing.T) {
	m := newMgr(t)
	tk, _ := m.AssignTicket(1, extent.List{{Offset: 0, Length: 10}})
	if err := m.Abort(1, 99); err == nil {
		t.Fatal("aborting unassigned version must fail")
	}
	if err := m.Abort(9, 1); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("err = %v", err)
	}
	if err := m.Complete(1, tk.Version, segtree.NodeKey{Version: 1, Size: 1024}); err != nil {
		t.Fatal(err)
	}
	if err := m.Abort(1, tk.Version); !errors.Is(err, ErrDoubleComplete) {
		t.Fatalf("abort after complete err = %v", err)
	}
}

func TestAbortedChainOfVersions(t *testing.T) {
	m := newMgr(t)
	var tickets []Ticket
	for i := 0; i < 5; i++ {
		tk, _ := m.AssignTicket(1, extent.List{{Offset: int64(i) * 64, Length: 64}})
		tickets = append(tickets, tk)
	}
	// Abort 1,2,3; complete 4,5.
	for i := 0; i < 3; i++ {
		if err := m.Abort(1, tickets[i].Version); err != nil {
			t.Fatal(err)
		}
	}
	for i := 3; i < 5; i++ {
		root := segtree.NodeKey{Version: tickets[i].Version, Offset: 0, Size: 1024}
		if err := m.Complete(1, tickets[i].Version, root); err != nil {
			t.Fatal(err)
		}
	}
	info, _ := m.LatestPublished(1)
	if info.Version != 5 {
		t.Fatalf("published = %d, want 5", info.Version)
	}
	// Versions 1..3 all resolve to the empty predecessor root.
	for v := uint64(1); v <= 3; v++ {
		s, err := m.Snapshot(1, v)
		if err != nil || !s.Root.IsZero() {
			t.Fatalf("aborted snapshot %d = %+v, %v", v, s, err)
		}
	}
}
