package vmanager

import (
	"errors"
	"testing"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

// lifecycleManager publishes n versions of blob 1 and returns the
// manager (version v's root is a distinct synthetic key).
func lifecycleManager(t *testing.T, n int) *Manager {
	t.Helper()
	m := New(iosim.CostModel{})
	if err := m.CreateBlob(1, segtree.Geometry{Capacity: 1 << 20, Page: 1024}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < n; i++ {
		tk, err := m.AssignTicket(1, extent.List{{Offset: int64(i) * 1024, Length: 512}})
		if err != nil {
			t.Fatal(err)
		}
		root := segtree.NodeKey{Version: tk.Version, Offset: 0, Size: 1 << 20}
		if err := m.Complete(1, tk.Version, root); err != nil {
			t.Fatal(err)
		}
	}
	return m
}

func TestDropVersionRules(t *testing.T) {
	m := lifecycleManager(t, 5)

	if err := m.DropVersion(1, 0); !errors.Is(err, ErrUndroppable) {
		t.Fatalf("drop v0 = %v, want ErrUndroppable", err)
	}
	if err := m.DropVersion(1, 5); !errors.Is(err, ErrUndroppable) {
		t.Fatalf("drop latest = %v, want ErrUndroppable", err)
	}
	if err := m.DropVersion(1, 9); !errors.Is(err, ErrUnknownVersion) {
		t.Fatalf("drop unassigned = %v, want ErrUnknownVersion", err)
	}
	if err := m.DropVersion(2, 1); !errors.Is(err, ErrUnknownBlob) {
		t.Fatalf("drop unknown blob = %v, want ErrUnknownBlob", err)
	}
	if err := m.DropVersion(1, 3); err != nil {
		t.Fatalf("drop v3: %v", err)
	}
	if err := m.DropVersion(1, 3); !errors.Is(err, ErrVersionDropped) {
		t.Fatalf("double drop = %v, want ErrVersionDropped", err)
	}
	// Dropped versions vanish from reads and enumeration.
	if _, err := m.Snapshot(1, 3); !errors.Is(err, ErrVersionDropped) {
		t.Fatalf("snapshot of dropped = %v, want ErrVersionDropped", err)
	}
	vs, err := m.Versions(1)
	if err != nil {
		t.Fatal(err)
	}
	want := []uint64{0, 1, 2, 4, 5}
	if len(vs) != len(want) {
		t.Fatalf("versions = %v, want %v", vs, want)
	}
	for i := range want {
		if vs[i] != want[i] {
			t.Fatalf("versions = %v, want %v", vs, want)
		}
	}
	// Untouched versions still read.
	if _, err := m.Snapshot(1, 2); err != nil {
		t.Fatalf("snapshot of retained: %v", err)
	}
}

func TestPinProtectsFromDropAndRetain(t *testing.T) {
	m := lifecycleManager(t, 6)
	if err := m.Pin(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.Pin(1, 2); err != nil {
		t.Fatal(err) // pins are counted
	}
	if err := m.DropVersion(1, 2); !errors.Is(err, ErrVersionPinned) {
		t.Fatalf("drop pinned = %v, want ErrVersionPinned", err)
	}
	dropped, err := m.Retain(1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range dropped {
		if v == 2 {
			t.Fatalf("retain dropped pinned version: %v", dropped)
		}
	}
	if want := []uint64{1, 3, 4}; len(dropped) != len(want) {
		t.Fatalf("retain dropped %v, want %v", dropped, want)
	}
	// One unpin is not enough (two pins); two are.
	if err := m.Unpin(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.DropVersion(1, 2); !errors.Is(err, ErrVersionPinned) {
		t.Fatalf("drop once-unpinned = %v, want still pinned", err)
	}
	if err := m.Unpin(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.DropVersion(1, 2); err != nil {
		t.Fatalf("drop after full unpin: %v", err)
	}
	if err := m.Unpin(1, 2); !errors.Is(err, ErrNotPinned) {
		t.Fatalf("unpin unpinned = %v, want ErrNotPinned", err)
	}
	// Pinning a dropped version is refused.
	if err := m.Pin(1, 1); !errors.Is(err, ErrVersionDropped) {
		t.Fatalf("pin dropped = %v, want ErrVersionDropped", err)
	}
}

func TestRetainKeepsNewestAndIsIdempotent(t *testing.T) {
	m := lifecycleManager(t, 8)
	dropped, err := m.Retain(1, 3)
	if err != nil {
		t.Fatal(err)
	}
	if want := []uint64{1, 2, 3, 4, 5}; len(dropped) != len(want) {
		t.Fatalf("dropped %v, want %v", dropped, want)
	}
	again, err := m.Retain(1, 3)
	if err != nil || len(again) != 0 {
		t.Fatalf("second retain = %v, %v; want none", again, err)
	}
	if _, err := m.Retain(1, 0); err == nil {
		t.Fatal("Retain accepted keepLast 0")
	}
	// Fewer published versions than keepLast: nothing to do.
	m2 := lifecycleManager(t, 2)
	if d, err := m2.Retain(1, 5); err != nil || len(d) != 0 {
		t.Fatalf("retain beyond history = %v, %v", d, err)
	}
}

func TestGCInfoAndMarkReclaimed(t *testing.T) {
	m := lifecycleManager(t, 5)
	if err := m.Pin(1, 4); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Retain(1, 1); err != nil {
		t.Fatal(err)
	}
	info, err := m.GCInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if info.Published != 5 {
		t.Fatalf("published = %d", info.Published)
	}
	if want := []uint64{0, 4, 5}; len(info.Retained) != len(want) {
		t.Fatalf("retained = %v, want %v", info.Retained, want)
	}
	if len(info.Pending) != 3 {
		t.Fatalf("pending = %+v, want v1..v3", info.Pending)
	}
	for i, p := range info.Pending {
		if p.Version != uint64(i+1) {
			t.Fatalf("pending[%d] = %+v", i, p)
		}
		if p.Root.IsZero() {
			t.Fatalf("pending %d lost its root", p.Version)
		}
	}
	if len(info.Pinned) != 1 || info.Pinned[0] != 4 {
		t.Fatalf("pinned = %v", info.Pinned)
	}

	if err := m.MarkReclaimed(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.MarkReclaimed(1, 2); !errors.Is(err, ErrNotPending) {
		t.Fatalf("double reclaim = %v, want ErrNotPending", err)
	}
	if err := m.MarkReclaimed(1, 4); !errors.Is(err, ErrNotPending) {
		t.Fatalf("reclaim retained = %v, want ErrNotPending", err)
	}
	info, err = m.GCInfo(1)
	if err != nil {
		t.Fatal(err)
	}
	if len(info.Pending) != 2 || info.Reclaimed != 1 {
		t.Fatalf("after reclaim: pending %+v, reclaimed %d", info.Pending, info.Reclaimed)
	}
	// Reclaimed versions stay unreadable.
	if _, err := m.Snapshot(1, 2); !errors.Is(err, ErrVersionDropped) {
		t.Fatalf("snapshot of reclaimed = %v", err)
	}
}

func TestDropDoesNotDisturbWritePath(t *testing.T) {
	m := lifecycleManager(t, 4)
	if err := m.DropVersion(1, 2); err != nil {
		t.Fatal(err)
	}
	// New tickets assign, borrow and publish exactly as before: the
	// vmap still answers with the dropped version (its metadata nodes
	// survive for borrowing).
	tk, err := m.AssignTicket(1, extent.List{{Offset: 1024, Length: 512}})
	if err != nil {
		t.Fatal(err)
	}
	if tk.Version != 5 {
		t.Fatalf("ticket = %d, want 5", tk.Version)
	}
	if err := m.Complete(1, 5, segtree.NodeKey{Version: 5, Size: 1 << 20}); err != nil {
		t.Fatal(err)
	}
	info, err := m.LatestPublished(1)
	if err != nil || info.Version != 5 {
		t.Fatalf("latest = %+v, %v", info, err)
	}
}
