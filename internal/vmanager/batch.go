package vmanager

import (
	"sync"
	"time"

	"repro/internal/extent"
	"repro/internal/segtree"
)

// BatchConfig tunes the manager's group-commit pipeline.
type BatchConfig struct {
	// MaxBatch bounds how many requests one group commit may carry.
	// Values <= 1 disable batching: every request pays its own lock
	// acquisition and control round trip (the pre-batching behavior).
	MaxBatch int
	// MaxDelay bounds how long a group leader lingers waiting for the
	// group to fill before committing what it has. Zero commits
	// opportunistically: whatever queued while the previous group was
	// being applied forms the next group.
	MaxDelay time.Duration
}

// SetBatching configures group commit. Safe to call concurrently with
// requests; in-flight groups finish under the configuration they
// started with.
func (m *Manager) SetBatching(cfg BatchConfig) {
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	m.batch = cfg
}

// Batching returns the current group-commit configuration.
func (m *Manager) Batching() BatchConfig {
	m.batchMu.Lock()
	defer m.batchMu.Unlock()
	return m.batch
}

// TicketRequest is one AssignTicket call inside a batch.
type TicketRequest struct {
	Blob    uint64
	Extents extent.List
}

// TicketResult is the per-request outcome of a batched ticket assign.
type TicketResult struct {
	Ticket Ticket
	Err    error
}

// PublishRequest is one Complete (or Abort) call inside a batch.
type PublishRequest struct {
	Blob    uint64
	Version uint64
	Root    segtree.NodeKey
	Abort   bool
}

// AssignTicketBatch assigns tickets for a whole batch of requests under
// one lock acquisition and one metered control round trip. Requests are
// applied in slice order, so same-blob requests receive contiguous
// versions and each request's borrow answers reflect every earlier
// request in the batch. Failures are per-request: one bad request never
// poisons its batch peers.
func (m *Manager) AssignTicketBatch(reqs []TicketRequest) []TicketResult {
	out := make([]TicketResult, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		for i := range out {
			out[i].Err = ErrShardDown
		}
		return out
	}
	for i, r := range reqs {
		e := r.Extents.Normalize()
		if len(e) == 0 {
			out[i].Err = ErrEmptyWrite
			continue
		}
		out[i].Ticket, out[i].Err = m.assignTicketLocked(r.Blob, e)
	}
	return out
}

// CompleteBatch applies a whole batch of Complete/Abort requests under
// one lock acquisition and one metered control round trip, then
// publishes everything that became ready with a single broadcast per
// blob. Failures are per-request.
//
// The batch is atomic against a mid-batch kill (the Crashpoint seam):
// if the manager dies partway through, the applied prefix is rolled
// back before anything publishes and every request in the batch fails
// with ErrShardDown — a batch is never torn.
func (m *Manager) CompleteBatch(reqs []PublishRequest) []error {
	out := make([]error, len(reqs))
	if len(reqs) == 0 {
		return out
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		for i := range out {
			out[i] = ErrShardDown
		}
		return out
	}
	crash := m.crash
	type appliedReq struct {
		st *blobState
		r  PublishRequest
	}
	var applied []appliedReq
	// One extra iteration so the crashpoint also observes the state
	// after the last request was applied (a size-1 batch would otherwise
	// never be seen in flight).
	for i := 0; i <= len(reqs); i++ {
		if crash != nil && crash(reqs, len(applied)) {
			// Kill mid-batch: undo the applied prefix. Nothing published
			// yet (publishReady runs only after the loop) and no
			// counters/undo-runs were touched (finishLocked runs only on
			// success), so deleting the completion records suffices.
			for _, a := range applied {
				delete(a.st.completed, a.r.Version)
				if a.r.Abort {
					delete(a.st.aborted, a.r.Version)
				} else {
					delete(a.st.roots, a.r.Version)
				}
			}
			m.killLocked()
			for i := range out {
				out[i] = ErrShardDown
			}
			return out
		}
		if i == len(reqs) {
			break
		}
		r := reqs[i]
		st, err := m.completeLocked(r.Blob, r.Version, r.Root, r.Abort)
		if err != nil {
			out[i] = err
			continue
		}
		applied = append(applied, appliedReq{st: st, r: r})
	}
	touched := make(map[*blobState]bool)
	for _, a := range applied {
		m.finishLocked(a.st, a.r.Version, a.r.Abort)
		touched[a.st] = true
	}
	for st := range touched {
		if st.publishReady(m) {
			st.cond.Broadcast()
		}
	}
	return out
}

// --- Group-commit combiner ---

// ticketReq is the combiner's internal AssignTicket request (extents
// already normalized and non-empty).
type ticketReq struct {
	blob uint64
	ext  extent.List
}

// applyTicketBatch is the tickets combiner's apply function; it shares
// AssignTicketBatch's one-charge one-lock core.
func (m *Manager) applyTicketBatch(batch []*pending[ticketReq, Ticket]) {
	reqs := make([]TicketRequest, len(batch))
	for i, p := range batch {
		reqs[i] = TicketRequest{Blob: p.req.blob, Extents: p.req.ext}
	}
	for i, r := range m.AssignTicketBatch(reqs) {
		batch[i].resp, batch[i].err = r.Ticket, r.Err
	}
}

// applyPublishBatch is the commits combiner's apply function; it shares
// CompleteBatch's one-charge one-lock one-broadcast core.
func (m *Manager) applyPublishBatch(batch []*pending[PublishRequest, struct{}]) {
	reqs := make([]PublishRequest, len(batch))
	for i, p := range batch {
		reqs[i] = p.req
	}
	for i, err := range m.CompleteBatch(reqs) {
		batch[i].err = err
	}
}

// pending is one caller waiting inside a combiner queue. The leader
// fills resp/err before closing done.
type pending[Req, Resp any] struct {
	req  Req
	resp Resp
	err  error
	done chan struct{}
}

// combiner implements leader/follower group commit (flat combining):
// the first caller to find the queue idle becomes the leader, optionally
// lingers for the group to fill, then applies the whole group in one
// shot and keeps draining until the queue is empty, so no follower is
// ever stranded. Followers just wait for their slot's result. There is
// no background goroutine: the pipeline costs nothing when idle and
// degenerates to the direct path at MaxBatch 1 (the caller skips the
// combiner entirely then, see AssignTicket/Complete).
type combiner[Req, Resp any] struct {
	apply func([]*pending[Req, Resp])

	mu     sync.Mutex
	queue  []*pending[Req, Resp]
	busy   bool          // a leader is lingering or draining
	filled chan struct{} // signalled when the queue reaches MaxBatch
}

func newCombiner[Req, Resp any](apply func([]*pending[Req, Resp])) *combiner[Req, Resp] {
	return &combiner[Req, Resp]{apply: apply, filled: make(chan struct{}, 1)}
}

// do submits one request and blocks until a group commit containing it
// has been applied.
func (c *combiner[Req, Resp]) do(req Req, cfg BatchConfig) (Resp, error) {
	p := &pending[Req, Resp]{req: req, done: make(chan struct{})}
	c.mu.Lock()
	c.queue = append(c.queue, p)
	if c.busy {
		full := len(c.queue) >= cfg.MaxBatch
		c.mu.Unlock()
		if full {
			// Wake a lingering leader early; dropping the signal when
			// one is already pending is fine.
			select {
			case c.filled <- struct{}{}:
			default:
			}
		}
		<-p.done
		return p.resp, p.err
	}
	c.busy = true
	c.mu.Unlock()

	// Leader: discard any stale fill signal, then linger for the group
	// to fill (bounded by MaxDelay).
	select {
	case <-c.filled:
	default:
	}
	if cfg.MaxDelay > 0 {
		c.mu.Lock()
		n := len(c.queue)
		c.mu.Unlock()
		if n < cfg.MaxBatch {
			t := time.NewTimer(cfg.MaxDelay)
			select {
			case <-c.filled:
				t.Stop()
			case <-t.C:
			}
		}
	}

	// Drain until the queue is empty; only then may leadership lapse.
	for {
		c.mu.Lock()
		var batch []*pending[Req, Resp]
		if len(c.queue) > cfg.MaxBatch {
			batch = c.queue[:cfg.MaxBatch:cfg.MaxBatch]
			c.queue = append([]*pending[Req, Resp]{}, c.queue[cfg.MaxBatch:]...)
		} else {
			batch = c.queue
			c.queue = nil
		}
		if len(batch) == 0 {
			c.busy = false
			c.mu.Unlock()
			break
		}
		c.mu.Unlock()
		c.apply(batch)
		for _, b := range batch {
			close(b.done)
		}
	}
	<-p.done // own request was in one of the drained groups
	return p.resp, p.err
}
