package vmanager

// pageTree answers the version manager's borrow queries in O(log n):
// for every page of the blob it tracks the highest write ticket that
// touched it, supporting range stamp and range maximum. It is a sparse
// (pointer-based) segment tree with lazy propagation, allocating nodes
// only along touched paths, so huge address spaces cost nothing until
// written.
//
// Correctness hinges on ticket monotonicity: tickets only grow, so
// "stamp range with v" is equivalent to "raise range to at least v"
// (range-chmax), which composes cleanly under lazy propagation.
type pageTree struct {
	pages int64 // power of two
	root  *ptNode
}

type ptNode struct {
	max         uint64 // max version in subtree
	lazy        uint64 // pending raise for the whole subtree
	left, right *ptNode
}

// newPageTree builds a tree over the given number of pages (rounded up
// to a power of two).
func newPageTree(pages int64) *pageTree {
	p := int64(1)
	for p < pages {
		p <<= 1
	}
	return &pageTree{pages: p, root: &ptNode{}}
}

// stamp raises pages [lo, hi) to version v.
func (t *pageTree) stamp(lo, hi int64, v uint64) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi {
		return
	}
	t.root.stamp(0, t.pages, lo, hi, v)
}

// query returns the maximum version among pages [lo, hi), 0 if none.
func (t *pageTree) query(lo, hi int64) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi {
		return 0
	}
	return t.root.query(0, t.pages, lo, hi)
}

func (n *ptNode) apply(v uint64) {
	if v > n.max {
		n.max = v
	}
	if v > n.lazy {
		n.lazy = v
	}
}

func (n *ptNode) push() {
	if n.left == nil {
		n.left = &ptNode{}
		n.right = &ptNode{}
	}
	if n.lazy != 0 {
		n.left.apply(n.lazy)
		n.right.apply(n.lazy)
		n.lazy = 0
	}
}

func (n *ptNode) stamp(nodeLo, nodeHi, lo, hi int64, v uint64) {
	if lo <= nodeLo && nodeHi <= hi {
		n.apply(v)
		return
	}
	n.push()
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		n.left.stamp(nodeLo, mid, lo, hi, v)
	}
	if hi > mid {
		n.right.stamp(mid, nodeHi, lo, hi, v)
	}
	n.max = n.left.max
	if n.right.max > n.max {
		n.max = n.right.max
	}
}

func (n *ptNode) query(nodeLo, nodeHi, lo, hi int64) uint64 {
	if lo <= nodeLo && nodeHi <= hi {
		return n.max
	}
	if n.left == nil {
		// Never split: every stamp covered this whole node range, so
		// all pages below share the same version, n.max.
		return n.max
	}
	mid := (nodeLo + nodeHi) / 2
	var best uint64
	if lo < mid {
		best = n.left.query(nodeLo, mid, lo, hi)
	}
	if hi > mid {
		if r := n.right.query(mid, nodeHi, lo, hi); r > best {
			best = r
		}
	}
	if n.lazy > best {
		best = n.lazy
	}
	return best
}
