package vmanager

// pageTree answers the version manager's borrow queries in O(log n):
// for every page of the blob it tracks the highest write ticket that
// touched it, supporting range stamp and range maximum. It is a sparse
// (pointer-based) segment tree with lazy propagation, allocating nodes
// only along touched paths, so huge address spaces cost nothing until
// written.
//
// Correctness hinges on ticket monotonicity: tickets only grow, so
// "stamp range with v" is equivalent to "raise range to at least v"
// (range-chmax), which composes cleanly under lazy propagation.
type pageTree struct {
	pages int64 // power of two
	root  *ptNode
}

type ptNode struct {
	max         uint64 // max version in subtree
	lazy        uint64 // pending raise for the whole subtree
	left, right *ptNode
}

// newPageTree builds a tree over the given number of pages (rounded up
// to a power of two).
func newPageTree(pages int64) *pageTree {
	p := int64(1)
	for p < pages {
		p <<= 1
	}
	return &pageTree{pages: p, root: &ptNode{}}
}

// stamp raises pages [lo, hi) to version v.
func (t *pageTree) stamp(lo, hi int64, v uint64) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi {
		return
	}
	t.root.stamp(0, t.pages, lo, hi, v)
}

// query returns the maximum version among pages [lo, hi), 0 if none.
func (t *pageTree) query(lo, hi int64) uint64 {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi {
		return 0
	}
	return t.root.query(0, t.pages, lo, hi)
}

// stampRun is one maximal constant-version run of pages, as captured by
// runs. The version manager records the runs a write is about to
// over-stamp so an abort can put them back (see restoreWhere).
type stampRun struct {
	Lo, Hi int64 // page range [Lo, Hi)
	V      uint64
}

// runs enumerates the maximal constant-version runs covering pages
// [lo, hi), in page order. Runs of version 0 (never written) are
// included, so the concatenation always covers the whole range.
func (t *pageTree) runs(lo, hi int64) []stampRun {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi {
		return nil
	}
	var out []stampRun
	t.root.runs(0, t.pages, lo, hi, &out)
	return out
}

func (n *ptNode) runs(nodeLo, nodeHi, lo, hi int64, out *[]stampRun) {
	if n.left == nil {
		// Never split: every stamp covered this whole node range, so
		// all pages below share the same version, n.max.
		clo, chi := max(lo, nodeLo), min(hi, nodeHi)
		if m := len(*out); m > 0 && (*out)[m-1].Hi == clo && (*out)[m-1].V == n.max {
			(*out)[m-1].Hi = chi
		} else {
			*out = append(*out, stampRun{Lo: clo, Hi: chi, V: n.max})
		}
		return
	}
	n.push()
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		n.left.runs(nodeLo, mid, lo, hi, out)
	}
	if hi > mid {
		n.right.runs(mid, nodeHi, lo, hi, out)
	}
}

// restoreWhere lowers every page in [lo, hi) whose current version is
// exactly `from` back to `to` (to < from). This is the one sanctioned
// breach of ticket monotonicity: undoing the stamps of an aborted
// ticket that is still the top stamper of those pages, so later borrow
// queries skip the aborted write. Pages already over-stamped by a later
// ticket are left alone — that ticket's data supersedes either way.
func (t *pageTree) restoreWhere(lo, hi int64, from, to uint64) {
	if lo < 0 {
		lo = 0
	}
	if hi > t.pages {
		hi = t.pages
	}
	if lo >= hi || from <= to {
		return
	}
	t.root.restoreWhere(0, t.pages, lo, hi, from, to)
}

func (n *ptNode) restoreWhere(nodeLo, nodeHi, lo, hi int64, from, to uint64) {
	if nodeHi <= lo || nodeLo >= hi || n.max < from {
		return
	}
	if n.left == nil {
		if n.max != from {
			// Uniform at a version above `from`; no page to restore.
			return
		}
		if lo <= nodeLo && nodeHi <= hi {
			// Uniform at `from` and fully inside the range: lower it.
			// Setting lazy too preserves the childless invariant
			// (max == lazy), so a later partial stamp materializes
			// children at the restored value.
			n.max, n.lazy = to, to
			return
		}
		// Uniform at `from` but straddling the range edge: split.
	}
	n.push()
	mid := (nodeLo + nodeHi) / 2
	n.left.restoreWhere(nodeLo, mid, lo, hi, from, to)
	n.right.restoreWhere(mid, nodeHi, lo, hi, from, to)
	n.max = n.left.max
	if n.right.max > n.max {
		n.max = n.right.max
	}
}

func (n *ptNode) apply(v uint64) {
	if v > n.max {
		n.max = v
	}
	if v > n.lazy {
		n.lazy = v
	}
}

func (n *ptNode) push() {
	if n.left == nil {
		n.left = &ptNode{}
		n.right = &ptNode{}
	}
	if n.lazy != 0 {
		n.left.apply(n.lazy)
		n.right.apply(n.lazy)
		n.lazy = 0
	}
}

func (n *ptNode) stamp(nodeLo, nodeHi, lo, hi int64, v uint64) {
	if lo <= nodeLo && nodeHi <= hi {
		n.apply(v)
		return
	}
	n.push()
	mid := (nodeLo + nodeHi) / 2
	if lo < mid {
		n.left.stamp(nodeLo, mid, lo, hi, v)
	}
	if hi > mid {
		n.right.stamp(mid, nodeHi, lo, hi, v)
	}
	n.max = n.left.max
	if n.right.max > n.max {
		n.max = n.right.max
	}
}

func (n *ptNode) query(nodeLo, nodeHi, lo, hi int64) uint64 {
	if lo <= nodeLo && nodeHi <= hi {
		return n.max
	}
	if n.left == nil {
		// Never split: every stamp covered this whole node range, so
		// all pages below share the same version, n.max.
		return n.max
	}
	mid := (nodeLo + nodeHi) / 2
	var best uint64
	if lo < mid {
		best = n.left.query(nodeLo, mid, lo, hi)
	}
	if hi > mid {
		if r := n.right.query(mid, nodeHi, lo, hi); r > best {
			best = r
		}
	}
	if n.lazy > best {
		best = n.lazy
	}
	return best
}
