package vmanager

import (
	"errors"
	"math/rand"
	"testing"
	"testing/quick"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/segtree"
)

// TestShardIndexStable pins the routing contract clients and servers
// both rely on: the blob→shard mapping is a pure function of (blob, n)
// — stable across router re-instantiation, always in range, and
// degenerate n collapses to shard 0.
func TestShardIndexStable(t *testing.T) {
	f := func(blob uint64, nRaw uint8) bool {
		n := int(nRaw%64) + 1
		want := ShardIndex(blob, n)
		if want < 0 || want >= n {
			return false
		}
		a := NewSharded(iosim.CostModel{}, n)
		b := NewSharded(iosim.CostModel{}, n)
		return a.ShardOf(blob) == want && b.ShardOf(blob) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
	for _, n := range []int{-3, 0, 1} {
		if got := ShardIndex(42, n); got != 0 {
			t.Fatalf("ShardIndex(42, %d) = %d, want 0", n, got)
		}
	}
}

// TestShardIndexAllReachable: for every shard count up to 64, a modest
// deterministic ID population must reach every shard — an unreachable
// shard would silently idle while its peers absorb its load.
func TestShardIndexAllReachable(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	ids := make([]uint64, 4096)
	for i := range ids {
		ids[i] = rng.Uint64()
	}
	for n := 1; n <= 64; n++ {
		hit := make([]bool, n)
		for _, id := range ids {
			hit[ShardIndex(id, n)] = true
		}
		for s, ok := range hit {
			if !ok {
				t.Fatalf("n=%d: shard %d unreachable over %d random IDs", n, s, len(ids))
			}
		}
		// Small sequential IDs — the ones deployments actually mint —
		// must spread too, or the hash finalizer is broken.
		hit = make([]bool, n)
		for id := uint64(1); id <= 4096; id++ {
			hit[ShardIndex(id, n)] = true
		}
		for s, ok := range hit {
			if !ok {
				t.Fatalf("n=%d: shard %d unreachable over sequential IDs 1..4096", n, s)
			}
		}
	}
}

// TestShardedBatchStitch: splitting a batch across shards and
// re-stitching must preserve request order and per-request error
// identity — result i belongs to request i with exactly the error a
// single manager would have produced, and per-blob version sequences
// are untouched by the fan-out.
func TestShardedBatchStitch(t *testing.T) {
	const blobs = 6
	geo := segtree.Geometry{Capacity: 1024, Page: 64}
	sharded := NewSharded(iosim.CostModel{}, 4)
	ref := NewSharded(iosim.CostModel{}, 1)
	for b := uint64(1); b <= blobs; b++ {
		for _, s := range []*Sharded{sharded, ref} {
			if err := s.CreateBlob(b, geo); err != nil {
				t.Fatal(err)
			}
		}
	}

	// An adversarial batch: interleaved blobs (so the split touches
	// every shard), repeats (per-blob version sequences), an unknown
	// blob and an empty extent list (error identity at a fixed index).
	rng := rand.New(rand.NewSource(2))
	var reqs []TicketRequest
	for i := 0; i < 40; i++ {
		switch i {
		case 7:
			reqs = append(reqs, TicketRequest{Blob: 99, Extents: extent.List{{Offset: 0, Length: 64}}})
		case 23:
			reqs = append(reqs, TicketRequest{Blob: 1 + uint64(i)%blobs, Extents: nil})
		default:
			off := int64(rng.Intn(15)) * 64
			reqs = append(reqs, TicketRequest{
				Blob:    1 + uint64(rng.Intn(blobs)),
				Extents: extent.List{{Offset: off, Length: 64}},
			})
		}
	}

	got := sharded.AssignTicketBatch(reqs)
	want := ref.AssignTicketBatch(reqs)
	if len(got) != len(reqs) {
		t.Fatalf("stitched %d results for %d requests", len(got), len(reqs))
	}
	for i := range reqs {
		if (got[i].Err == nil) != (want[i].Err == nil) || !errors.Is(got[i].Err, errKind(want[i].Err)) {
			t.Fatalf("request %d: err = %v, single-manager reference = %v", i, got[i].Err, want[i].Err)
		}
		if got[i].Err != nil {
			continue
		}
		if got[i].Ticket.Version != want[i].Ticket.Version {
			t.Fatalf("request %d (blob %d): version %d, single-manager reference %d",
				i, reqs[i].Blob, got[i].Ticket.Version, want[i].Ticket.Version)
		}
	}

	// Publish half the tickets on both deployments, with one
	// double-complete and one unknown-blob request mixed in; the
	// stitched error slice must match the reference index by index.
	var pubs []PublishRequest
	for i := range reqs {
		if got[i].Err != nil || i%2 == 0 {
			continue
		}
		pubs = append(pubs, PublishRequest{
			Blob:    reqs[i].Blob,
			Version: got[i].Ticket.Version,
			Root:    segtree.NodeKey{Version: got[i].Ticket.Version, Offset: 0, Size: 1024},
		})
	}
	pubs = append(pubs, pubs[0])                              // double complete
	pubs = append(pubs, PublishRequest{Blob: 99, Version: 1}) // unknown blob
	gotErrs := sharded.CompleteBatch(pubs)
	wantErrs := ref.CompleteBatch(pubs)
	for i := range pubs {
		if !errors.Is(gotErrs[i], errKind(wantErrs[i])) {
			t.Fatalf("publish %d: err = %v, single-manager reference = %v", i, gotErrs[i], wantErrs[i])
		}
	}
}

// errKind maps a reference error to the sentinel identity the stitched
// result must carry (nil stays nil, so errors.Is(x, nil) checks x==nil).
func errKind(err error) error {
	for _, sentinel := range []error{ErrUnknownBlob, ErrEmptyWrite, ErrDoubleComplete, ErrUnknownVersion, ErrShardDown} {
		if errors.Is(err, sentinel) {
			return sentinel
		}
	}
	return err
}

// TestShardedBlobsPartition: every created blob lands on exactly the
// shard ShardIndex names, and on no other.
func TestShardedBlobsPartition(t *testing.T) {
	s := NewSharded(iosim.CostModel{}, 8)
	geo := segtree.Geometry{Capacity: 1024, Page: 64}
	for b := uint64(1); b <= 32; b++ {
		if err := s.CreateBlob(b, geo); err != nil {
			t.Fatal(err)
		}
	}
	seen := make(map[uint64]int)
	for i := 0; i < s.NumShards(); i++ {
		for _, b := range s.Shard(i).Blobs() {
			if prev, dup := seen[b]; dup {
				t.Fatalf("blob %d on shards %d and %d", b, prev, i)
			}
			seen[b] = i
			if want := ShardIndex(b, 8); i != want {
				t.Fatalf("blob %d on shard %d, ShardIndex says %d", b, i, want)
			}
		}
	}
	if len(seen) != 32 {
		t.Fatalf("%d blobs across shards, want 32", len(seen))
	}
}

// TestShardedBatchingUniform pins the Batching accessor: the shared
// config must come back regardless of which shard a pre-fix reader
// would have consulted, and a divergent per-shard config (reachable
// only via Shard(i).SetBatching) panics instead of being silently
// misreported as shard 0's view.
func TestShardedBatchingUniform(t *testing.T) {
	s := NewSharded(iosim.CostModel{}, 4)
	cfg := BatchConfig{MaxBatch: 16, MaxDelay: 5 * time.Millisecond}
	s.SetBatching(cfg)
	if got := s.Batching(); got != cfg {
		t.Fatalf("Batching() = %+v, want %+v", got, cfg)
	}

	// Diverge a non-zero shard behind the router's back. The old
	// accessor returned shard 0's config and hid this.
	s.Shard(2).SetBatching(BatchConfig{MaxBatch: 99})
	defer func() {
		if recover() == nil {
			t.Fatal("Batching() must panic on divergent per-shard configs")
		}
	}()
	s.Batching()
}
