// Package vmanager implements the version manager, the serialization
// point of the versioning storage backend. It assigns write tickets,
// answers the borrow queries writers need to build shadowed metadata
// without synchronizing with each other, and publishes snapshots
// strictly in ticket order so that every published snapshot is
// equivalent to a serial application of whole write calls — the MPI
// atomicity guarantee.
//
// The manager performs no data I/O: its critical sections are short and
// in-memory, which is why it does not become the bottleneck the way
// data-path locking does in the baseline.
//
// # Group commit
//
// At very high request rates the per-request control round trip itself
// becomes the limit, so the manager supports group commit (see
// batch.go): concurrent AssignTicket and Complete/Abort callers are
// combined into batches that are applied under one lock acquisition,
// one metered control round trip, and — for publication — one
// condition-variable broadcast. SetBatching configures the knobs
// (MaxBatch bounds the group size, MaxDelay bounds how long the group
// leader lingers for the group to fill); the default MaxBatch of 1
// degenerates to the unbatched per-request path. Batching never
// weakens the contract: requests in a batch are applied in queue
// order, so borrow answers still reflect exactly the tickets assigned
// before each request, and snapshots still publish strictly in ticket
// order.
//
// # Version lifecycle
//
// Published snapshots are retained by default but no longer immortal:
// a retention policy (Retain, DropVersion) moves old versions into a
// dropped state, readers can Pin the snapshot they are using to
// protect it, and a garbage collector drains the pending-drop set by
// deleting the chunks only dropped versions reference (GCInfo,
// MarkReclaimed). See lifecycle.go for the state machine and its
// protections.
package vmanager

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metrics"
	"repro/internal/segtree"
)

// Common errors.
var (
	ErrUnknownBlob    = errors.New("vmanager: unknown blob")
	ErrBlobExists     = errors.New("vmanager: blob already exists")
	ErrEmptyWrite     = errors.New("vmanager: empty extent list")
	ErrUnknownVersion = errors.New("vmanager: unknown or unpublished version")
	ErrDoubleComplete = errors.New("vmanager: version completed twice")
	// ErrShardDown is returned by every operation while the manager is
	// killed (see Kill/Restart and the Sharded router): the in-process
	// equivalent of the server being unreachable. Because a killed
	// manager fails requests before applying them — and a batch
	// interrupted mid-application is rolled back — ErrShardDown always
	// means "definitely not committed".
	ErrShardDown = errors.New("vmanager: shard down")
)

// Ticket is the response to a write-ticket request: the assigned
// version and the borrow answers (tree range → latest prior version
// touching it, 0 if never written) the writer needs to build metadata.
type Ticket struct {
	Version uint64
	Borrows map[extent.Extent]uint64
}

// SnapshotInfo describes one published snapshot.
type SnapshotInfo struct {
	Version uint64
	Root    segtree.NodeKey
	Size    int64
}

type blobState struct {
	geo  segtree.Geometry
	next uint64 // next ticket to assign
	vmap *pageTree

	sizes     map[uint64]int64           // ticket → snapshot size (fixed at assignment)
	roots     map[uint64]segtree.NodeKey // completed ticket → root
	completed map[uint64]bool
	aborted   map[uint64]bool
	published uint64
	cond      *sync.Cond // signalled when published advances

	// Version lifecycle (see lifecycle.go): dropped versions are no
	// longer readable, pending ones await chunk reclamation, pinned
	// ones are protected from retention.
	dropped   map[uint64]bool
	pending   map[uint64]bool
	pins      map[uint64]int
	reclaimed uint64

	// assigned records the wall-clock ticket-assignment time per
	// in-flight version, populated only when metrics are wired (entries
	// are deleted at publication, so the map stays bounded by the
	// in-flight window).
	assigned map[uint64]time.Time

	// undo holds, per in-flight ticket, the vmap stamp runs the ticket
	// over-wrote at assignment. An abort restores them (where the
	// ticket is still the top stamper), so later borrow queries never
	// reference the aborted write's metadata; a commit discards them.
	// Bounded by the in-flight window like assigned.
	undo map[uint64][]stampRun
}

// publishReady advances the published watermark over every completed
// version, resolving aborted versions to their predecessor's root so
// they become empty snapshots. Callers hold m.mu; the manager is passed
// in so each publication is counted and timed (assignment →
// publication) against its metrics.
func (st *blobState) publishReady(m *Manager) bool {
	advanced := false
	for st.completed[st.published+1] {
		v := st.published + 1
		if st.aborted[v] {
			st.roots[v] = st.roots[v-1]
			st.sizes[v] = st.sizes[v-1]
		}
		st.published = v
		advanced = true
		m.met.publishTotal.Inc()
		if t, ok := st.assigned[v]; ok {
			m.met.publishSec.ObserveSince(t)
			delete(st.assigned, v)
		}
	}
	return advanced
}

// Crashpoint is a test seam for killing a manager mid-batch: it is
// invoked under the manager lock before each request application of a
// CompleteBatch and once more after the last, with the whole batch and
// the count of requests applied so far. Returning true rolls back the
// batch's applied prefix, marks the manager down, and fails every
// request in the batch with ErrShardDown — the batch is atomically
// absent, never torn.
type Crashpoint func(batch []PublishRequest, applied int) bool

// Manager is the version manager service. Safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	blobs map[uint64]*blobState
	meter *iosim.Meter

	// down marks the manager administratively dead (Kill): every
	// operation fails with ErrShardDown until Restart. crash is the
	// optional mid-batch kill seam; both are guarded by mu.
	down  bool
	crash Crashpoint

	batchMu sync.Mutex
	batch   BatchConfig
	tickets *combiner[ticketReq, Ticket]
	commits *combiner[PublishRequest, struct{}]

	// met holds nil-tolerant metric handles; all remain nil until
	// SetMetrics, so an un-wired manager pays only nil checks.
	met struct {
		ticketTotal  *metrics.Counter
		commitTotal  *metrics.Counter
		abortTotal   *metrics.Counter
		publishTotal *metrics.Counter
		ticketSec    *metrics.Histogram
		commitSec    *metrics.Histogram
		publishSec   *metrics.Histogram
	}
}

// SetMetrics wires the manager's counters and latency histograms into
// reg: ticket/commit/abort/publish counts, AssignTicket and Complete
// wall-clock latency (including group-commit queueing), and the
// assignment-to-publication latency per version. Call before serving
// traffic; a nil registry leaves metrics disabled.
// Optional labels distinguish the series when several managers share a
// registry — the Sharded router passes shard=<i> so each shard's
// counters stay separate without renaming the bs_vm_* family.
func (m *Manager) SetMetrics(reg *metrics.Registry, labels ...metrics.Label) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.ticketTotal = reg.Counter("bs_vm_ticket_total", labels...)
	m.met.commitTotal = reg.Counter("bs_vm_commit_total", labels...)
	m.met.abortTotal = reg.Counter("bs_vm_abort_total", labels...)
	m.met.publishTotal = reg.Counter("bs_vm_publish_total", labels...)
	m.met.ticketSec = reg.Histogram("bs_vm_ticket_seconds", nil, labels...)
	m.met.commitSec = reg.Histogram("bs_vm_commit_seconds", nil, labels...)
	m.met.publishSec = reg.Histogram("bs_vm_publish_seconds", nil, labels...)
}

// New creates a manager charged with the given cost model per request
// (use the zero model in unit tests). The manager is a single control
// server, so its meter is exclusive: concurrent control requests queue
// in virtual time, which is exactly the serialization group commit
// amortizes.
func New(model iosim.CostModel) *Manager {
	m := &Manager{
		blobs: make(map[uint64]*blobState),
		meter: iosim.NewMeter(model, true),
	}
	m.tickets = newCombiner(m.applyTicketBatch)
	m.commits = newCombiner(m.applyPublishBatch)
	return m
}

// Meter exposes the request meter.
func (m *Manager) Meter() *iosim.Meter { return m.meter }

// CreateBlob registers a blob with the given tree geometry. Version 0
// is the implicit empty snapshot.
func (m *Manager) CreateBlob(blob uint64, geo segtree.Geometry) error {
	if err := geo.Validate(); err != nil {
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	if _, dup := m.blobs[blob]; dup {
		return fmt.Errorf("%w: %d", ErrBlobExists, blob)
	}
	st := &blobState{
		geo:       geo,
		next:      1,
		vmap:      newPageTree(geo.Capacity / geo.Page),
		sizes:     map[uint64]int64{0: 0},
		roots:     map[uint64]segtree.NodeKey{0: {}},
		completed: map[uint64]bool{0: true},
		aborted:   map[uint64]bool{},
		dropped:   map[uint64]bool{},
		pending:   map[uint64]bool{},
		pins:      map[uint64]int{},
		assigned:  map[uint64]time.Time{},
		undo:      map[uint64][]stampRun{},
	}
	st.cond = sync.NewCond(&m.mu)
	m.blobs[blob] = st
	return nil
}

// Geometry returns the blob's tree geometry.
func (m *Manager) Geometry(blob uint64) (segtree.Geometry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return segtree.Geometry{}, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return segtree.Geometry{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	return st.geo, nil
}

// AssignTicket reserves the next version for a write covering the given
// extents and computes its borrow answers atomically, so the answers
// reflect exactly the tickets < the assigned one. This is the only
// globally serialized step of a write and involves no I/O. With
// batching enabled, concurrent callers are group-committed: the whole
// group is assigned a contiguous ticket range under one lock
// acquisition and one metered control round trip.
func (m *Manager) AssignTicket(blob uint64, e extent.List) (Ticket, error) {
	e = e.Normalize()
	if len(e) == 0 {
		return Ticket{}, ErrEmptyWrite
	}
	if h := m.met.ticketSec; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		return m.tickets.do(ticketReq{blob: blob, ext: e}, cfg)
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return Ticket{}, ErrShardDown
	}
	return m.assignTicketLocked(blob, e)
}

// assignTicketLocked is the lock-held core of AssignTicket; extents
// must already be normalized and non-empty.
func (m *Manager) assignTicketLocked(blob uint64, e extent.List) (Ticket, error) {
	st, ok := m.blobs[blob]
	if !ok {
		return Ticket{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if b := e.Bounding(); b.End() > st.geo.Capacity {
		return Ticket{}, fmt.Errorf("%w: write %v beyond capacity %d", segtree.ErrOutOfRange, b, st.geo.Capacity)
	}
	v := st.next
	st.next++
	page := st.geo.Page
	borrows := make(map[extent.Extent]uint64)
	for _, r := range st.geo.Borrows(e) {
		// Geometry ranges are page-aligned, so page granularity is
		// exact here.
		if w := st.vmap.query(r.Offset/page, r.End()/page); w != 0 {
			borrows[r] = w
		}
	}
	// Capture the stamp runs this write is about to overwrite, so an
	// abort can restore them (clamping lo to the previous extent's hi:
	// adjacent normalized extents can round outward onto a shared
	// boundary page, which must not be captured twice).
	var undo []stampRun
	prevHi := int64(-1)
	for _, x := range e {
		lo, hi := x.Offset/page, (x.End()+page-1)/page
		if lo < prevHi {
			lo = prevHi
		}
		if hi > lo {
			undo = append(undo, st.vmap.runs(lo, hi)...)
			prevHi = hi
		}
	}
	st.undo[v] = undo
	for _, x := range e {
		// Stamp every page the write touches (ends rounded outward).
		st.vmap.stamp(x.Offset/page, (x.End()+page-1)/page, v)
	}
	// Snapshot size is fixed at ticket time: the size after applying
	// writes 1..v in order.
	prev := st.sizes[v-1]
	size := prev
	if end := e.Bounding().End(); end > size {
		size = end
	}
	st.sizes[v] = size
	m.met.ticketTotal.Inc()
	if m.met.publishSec != nil {
		st.assigned[v] = time.Now()
	}
	return Ticket{Version: v, Borrows: borrows}, nil
}

// Complete records that the metadata of version v is fully stored with
// the given root, then publishes every ready version in ticket order.
// With batching enabled, concurrent Complete/Abort callers are
// group-committed: the whole group is applied under one lock
// acquisition and the resulting publications happen with one broadcast.
func (m *Manager) Complete(blob, v uint64, root segtree.NodeKey) error {
	if h := m.met.commitSec; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		_, err := m.commits.do(PublishRequest{Blob: blob, Version: v, Root: root}, cfg)
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, err := m.completeLocked(blob, v, root, false)
	if err != nil {
		return err
	}
	m.finishLocked(st, v, false)
	if st.publishReady(m) {
		st.cond.Broadcast()
	}
	return nil
}

// completeLocked marks version v completed (or aborted) without
// publishing; the caller decides when to run publishReady so a batch
// of completions publishes with a single broadcast.
func (m *Manager) completeLocked(blob, v uint64, root segtree.NodeKey, abort bool) (*blobState, error) {
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v == 0 || v >= st.next {
		verb := "complete"
		if abort {
			verb = "abort"
		}
		return nil, fmt.Errorf("vmanager: %s of unassigned version %d", verb, v)
	}
	if st.completed[v] {
		return nil, fmt.Errorf("%w: %d", ErrDoubleComplete, v)
	}
	st.completed[v] = true
	if abort {
		st.aborted[v] = true
	} else {
		st.roots[v] = root
	}
	return st, nil
}

// finishLocked runs the post-completion bookkeeping completeLocked
// leaves out so CompleteBatch can roll back an applied prefix before
// any of it happens: the commit/abort counter bump, and the undo-run
// handling — an abort restores the vmap stamps the aborted ticket
// over-wrote (so later borrows skip it), a commit discards them.
func (m *Manager) finishLocked(st *blobState, v uint64, abort bool) {
	if abort {
		for _, r := range st.undo[v] {
			st.vmap.restoreWhere(r.Lo, r.Hi, v, r.V)
		}
		m.met.abortTotal.Inc()
	} else {
		m.met.commitTotal.Inc()
	}
	delete(st.undo, v)
}

// Abort gives up a ticket whose write failed after assignment. The
// version publishes as an empty snapshot (identical to its
// predecessor), so later tickets are not blocked behind a dead writer.
// Note the size watermark fixed at assignment time is rolled back for
// the aborted version itself but later snapshots keep the monotone
// watermark — unwritten bytes read as zero holes, as with sparse
// POSIX files.
func (m *Manager) Abort(blob, v uint64) error {
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		_, err := m.commits.do(PublishRequest{Blob: blob, Version: v, Abort: true}, cfg)
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return ErrShardDown
	}
	st, err := m.completeLocked(blob, v, segtree.NodeKey{}, true)
	if err != nil {
		return err
	}
	m.finishLocked(st, v, true)
	if st.publishReady(m) {
		st.cond.Broadcast()
	}
	return nil
}

// WaitPublished blocks until version v of the blob is published. If the
// manager is killed while waiting, it returns ErrShardDown — but a
// version that already published is reported as published even on a
// down manager, preserving "ErrShardDown means not committed".
func (m *Manager) WaitPublished(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v >= st.next {
		return fmt.Errorf("vmanager: waiting for unassigned version %d", v)
	}
	for st.published < v {
		if m.down {
			return ErrShardDown
		}
		st.cond.Wait()
	}
	return nil
}

// LatestPublished returns the newest published snapshot.
func (m *Manager) LatestPublished(blob uint64) (SnapshotInfo, error) {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return SnapshotInfo{}, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	return SnapshotInfo{Version: st.published, Root: st.roots[st.published], Size: st.sizes[st.published]}, nil
}

// Snapshot returns a published snapshot by version.
func (m *Manager) Snapshot(blob, v uint64) (SnapshotInfo, error) {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return SnapshotInfo{}, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v > st.published {
		return SnapshotInfo{}, fmt.Errorf("%w: %d (published %d)", ErrUnknownVersion, v, st.published)
	}
	if st.dropped[v] {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrVersionDropped, v)
	}
	return SnapshotInfo{Version: v, Root: st.roots[v], Size: st.sizes[v]}, nil
}

// Versions returns all retained published versions in order, including
// the empty snapshot 0. Versions dropped by the retention policy are
// excluded — readers, the scrubber and repair all iterate this, so a
// drop removes a version from every consumer at once.
func (m *Manager) Versions(blob uint64) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, ErrShardDown
	}
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	out := make([]uint64, 0, st.published+1)
	for v := uint64(0); v <= st.published; v++ {
		if !st.dropped[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// Blobs returns the IDs of all registered blobs.
func (m *Manager) Blobs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.blobs))
	for id := range m.blobs {
		out = append(out, id)
	}
	return out
}

// VersionRef names one version of one blob; Restart reports the
// versions it recovery-aborted as refs.
type VersionRef struct {
	Blob    uint64
	Version uint64
}

// ShardStatus is the operator-visible state of one manager (shard):
// reported by the manager itself, aggregated by the Sharded router, and
// surfaced over RPC for bsctl.
type ShardStatus struct {
	Index     int    // position in the shard set (0 for a lone manager)
	Down      bool   // killed and not yet restarted
	Blobs     int    // blobs owned by this shard
	Tickets   uint64 // tickets assigned across those blobs
	Published uint64 // versions published across those blobs
}

// SetCrashpoint installs (or, with nil, removes) the mid-batch kill
// seam. Test-only; see Crashpoint.
func (m *Manager) SetCrashpoint(cp Crashpoint) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crash = cp
}

// Down reports whether the manager is killed.
func (m *Manager) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

// Kill marks the manager down: every subsequent operation fails with
// ErrShardDown until Restart, and every blocked WaitPublished waiter is
// woken to observe the death. State already committed is retained —
// kill models a crash of the serving process, not data loss.
func (m *Manager) Kill() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.killLocked()
}

func (m *Manager) killLocked() {
	m.down = true
	for _, st := range m.blobs {
		st.cond.Broadcast()
	}
}

// Restart brings a killed manager back. Every ticket that was assigned
// but not completed at kill time is recovery-aborted — its writer is
// gone, and ErrShardDown promised it did not commit — so the publish
// watermark advances over the dead window and new writes proceed
// immediately. Returns the versions aborted this way, in order, so
// callers (and the shard-kill torture suite) can check every in-flight
// ticket was observably aborted rather than left torn.
func (m *Manager) Restart() []VersionRef {
	m.mu.Lock()
	defer m.mu.Unlock()
	if !m.down {
		return nil
	}
	m.down = false
	var aborted []VersionRef
	for id, st := range m.blobs {
		for v := st.published + 1; v < st.next; v++ {
			if st.completed[v] {
				continue
			}
			st.completed[v] = true
			st.aborted[v] = true
			m.finishLocked(st, v, true)
			aborted = append(aborted, VersionRef{Blob: id, Version: v})
		}
		if st.publishReady(m) {
			st.cond.Broadcast()
		}
	}
	sort.Slice(aborted, func(i, j int) bool {
		if aborted[i].Blob != aborted[j].Blob {
			return aborted[i].Blob < aborted[j].Blob
		}
		return aborted[i].Version < aborted[j].Version
	})
	return aborted
}

// Status reports the manager's shard status, with the given index.
func (m *Manager) Status(index int) ShardStatus {
	m.mu.Lock()
	defer m.mu.Unlock()
	s := ShardStatus{Index: index, Down: m.down, Blobs: len(m.blobs)}
	for _, st := range m.blobs {
		s.Tickets += st.next - 1
		s.Published += st.published
	}
	return s
}

// ShardStatuses reports the manager as a one-shard control plane,
// matching the Sharded router's method of the same name.
func (m *Manager) ShardStatuses() []ShardStatus {
	return []ShardStatus{m.Status(0)}
}
