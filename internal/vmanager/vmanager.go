// Package vmanager implements the version manager, the serialization
// point of the versioning storage backend. It assigns write tickets,
// answers the borrow queries writers need to build shadowed metadata
// without synchronizing with each other, and publishes snapshots
// strictly in ticket order so that every published snapshot is
// equivalent to a serial application of whole write calls — the MPI
// atomicity guarantee.
//
// The manager performs no data I/O: its critical sections are short and
// in-memory, which is why it does not become the bottleneck the way
// data-path locking does in the baseline.
//
// # Group commit
//
// At very high request rates the per-request control round trip itself
// becomes the limit, so the manager supports group commit (see
// batch.go): concurrent AssignTicket and Complete/Abort callers are
// combined into batches that are applied under one lock acquisition,
// one metered control round trip, and — for publication — one
// condition-variable broadcast. SetBatching configures the knobs
// (MaxBatch bounds the group size, MaxDelay bounds how long the group
// leader lingers for the group to fill); the default MaxBatch of 1
// degenerates to the unbatched per-request path. Batching never
// weakens the contract: requests in a batch are applied in queue
// order, so borrow answers still reflect exactly the tickets assigned
// before each request, and snapshots still publish strictly in ticket
// order.
//
// # Version lifecycle
//
// Published snapshots are retained by default but no longer immortal:
// a retention policy (Retain, DropVersion) moves old versions into a
// dropped state, readers can Pin the snapshot they are using to
// protect it, and a garbage collector drains the pending-drop set by
// deleting the chunks only dropped versions reference (GCInfo,
// MarkReclaimed). See lifecycle.go for the state machine and its
// protections.
package vmanager

import (
	"errors"
	"fmt"
	"sync"
	"time"

	"repro/internal/extent"
	"repro/internal/iosim"
	"repro/internal/metrics"
	"repro/internal/segtree"
)

// Common errors.
var (
	ErrUnknownBlob    = errors.New("vmanager: unknown blob")
	ErrBlobExists     = errors.New("vmanager: blob already exists")
	ErrEmptyWrite     = errors.New("vmanager: empty extent list")
	ErrUnknownVersion = errors.New("vmanager: unknown or unpublished version")
	ErrDoubleComplete = errors.New("vmanager: version completed twice")
)

// Ticket is the response to a write-ticket request: the assigned
// version and the borrow answers (tree range → latest prior version
// touching it, 0 if never written) the writer needs to build metadata.
type Ticket struct {
	Version uint64
	Borrows map[extent.Extent]uint64
}

// SnapshotInfo describes one published snapshot.
type SnapshotInfo struct {
	Version uint64
	Root    segtree.NodeKey
	Size    int64
}

type blobState struct {
	geo  segtree.Geometry
	next uint64 // next ticket to assign
	vmap *pageTree

	sizes     map[uint64]int64           // ticket → snapshot size (fixed at assignment)
	roots     map[uint64]segtree.NodeKey // completed ticket → root
	completed map[uint64]bool
	aborted   map[uint64]bool
	published uint64
	cond      *sync.Cond // signalled when published advances

	// Version lifecycle (see lifecycle.go): dropped versions are no
	// longer readable, pending ones await chunk reclamation, pinned
	// ones are protected from retention.
	dropped   map[uint64]bool
	pending   map[uint64]bool
	pins      map[uint64]int
	reclaimed uint64

	// assigned records the wall-clock ticket-assignment time per
	// in-flight version, populated only when metrics are wired (entries
	// are deleted at publication, so the map stays bounded by the
	// in-flight window).
	assigned map[uint64]time.Time
}

// publishReady advances the published watermark over every completed
// version, resolving aborted versions to their predecessor's root so
// they become empty snapshots. Callers hold m.mu; the manager is passed
// in so each publication is counted and timed (assignment →
// publication) against its metrics.
func (st *blobState) publishReady(m *Manager) bool {
	advanced := false
	for st.completed[st.published+1] {
		v := st.published + 1
		if st.aborted[v] {
			st.roots[v] = st.roots[v-1]
			st.sizes[v] = st.sizes[v-1]
		}
		st.published = v
		advanced = true
		m.met.publishTotal.Inc()
		if t, ok := st.assigned[v]; ok {
			m.met.publishSec.ObserveSince(t)
			delete(st.assigned, v)
		}
	}
	return advanced
}

// Manager is the version manager service. Safe for concurrent use.
type Manager struct {
	mu    sync.Mutex
	blobs map[uint64]*blobState
	meter *iosim.Meter

	batchMu sync.Mutex
	batch   BatchConfig
	tickets *combiner[ticketReq, Ticket]
	commits *combiner[PublishRequest, struct{}]

	// met holds nil-tolerant metric handles; all remain nil until
	// SetMetrics, so an un-wired manager pays only nil checks.
	met struct {
		ticketTotal  *metrics.Counter
		commitTotal  *metrics.Counter
		abortTotal   *metrics.Counter
		publishTotal *metrics.Counter
		ticketSec    *metrics.Histogram
		commitSec    *metrics.Histogram
		publishSec   *metrics.Histogram
	}
}

// SetMetrics wires the manager's counters and latency histograms into
// reg: ticket/commit/abort/publish counts, AssignTicket and Complete
// wall-clock latency (including group-commit queueing), and the
// assignment-to-publication latency per version. Call before serving
// traffic; a nil registry leaves metrics disabled.
func (m *Manager) SetMetrics(reg *metrics.Registry) {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.met.ticketTotal = reg.Counter("bs_vm_ticket_total")
	m.met.commitTotal = reg.Counter("bs_vm_commit_total")
	m.met.abortTotal = reg.Counter("bs_vm_abort_total")
	m.met.publishTotal = reg.Counter("bs_vm_publish_total")
	m.met.ticketSec = reg.Histogram("bs_vm_ticket_seconds", nil)
	m.met.commitSec = reg.Histogram("bs_vm_commit_seconds", nil)
	m.met.publishSec = reg.Histogram("bs_vm_publish_seconds", nil)
}

// New creates a manager charged with the given cost model per request
// (use the zero model in unit tests). The manager is a single control
// server, so its meter is exclusive: concurrent control requests queue
// in virtual time, which is exactly the serialization group commit
// amortizes.
func New(model iosim.CostModel) *Manager {
	m := &Manager{
		blobs: make(map[uint64]*blobState),
		meter: iosim.NewMeter(model, true),
	}
	m.tickets = newCombiner(m.applyTicketBatch)
	m.commits = newCombiner(m.applyPublishBatch)
	return m
}

// Meter exposes the request meter.
func (m *Manager) Meter() *iosim.Meter { return m.meter }

// CreateBlob registers a blob with the given tree geometry. Version 0
// is the implicit empty snapshot.
func (m *Manager) CreateBlob(blob uint64, geo segtree.Geometry) error {
	if err := geo.Validate(); err != nil {
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	if _, dup := m.blobs[blob]; dup {
		return fmt.Errorf("%w: %d", ErrBlobExists, blob)
	}
	st := &blobState{
		geo:       geo,
		next:      1,
		vmap:      newPageTree(geo.Capacity / geo.Page),
		sizes:     map[uint64]int64{0: 0},
		roots:     map[uint64]segtree.NodeKey{0: {}},
		completed: map[uint64]bool{0: true},
		aborted:   map[uint64]bool{},
		dropped:   map[uint64]bool{},
		pending:   map[uint64]bool{},
		pins:      map[uint64]int{},
		assigned:  map[uint64]time.Time{},
	}
	st.cond = sync.NewCond(&m.mu)
	m.blobs[blob] = st
	return nil
}

// Geometry returns the blob's tree geometry.
func (m *Manager) Geometry(blob uint64) (segtree.Geometry, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return segtree.Geometry{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	return st.geo, nil
}

// AssignTicket reserves the next version for a write covering the given
// extents and computes its borrow answers atomically, so the answers
// reflect exactly the tickets < the assigned one. This is the only
// globally serialized step of a write and involves no I/O. With
// batching enabled, concurrent callers are group-committed: the whole
// group is assigned a contiguous ticket range under one lock
// acquisition and one metered control round trip.
func (m *Manager) AssignTicket(blob uint64, e extent.List) (Ticket, error) {
	e = e.Normalize()
	if len(e) == 0 {
		return Ticket{}, ErrEmptyWrite
	}
	if h := m.met.ticketSec; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		return m.tickets.do(ticketReq{blob: blob, ext: e}, cfg)
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.assignTicketLocked(blob, e)
}

// assignTicketLocked is the lock-held core of AssignTicket; extents
// must already be normalized and non-empty.
func (m *Manager) assignTicketLocked(blob uint64, e extent.List) (Ticket, error) {
	st, ok := m.blobs[blob]
	if !ok {
		return Ticket{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if b := e.Bounding(); b.End() > st.geo.Capacity {
		return Ticket{}, fmt.Errorf("%w: write %v beyond capacity %d", segtree.ErrOutOfRange, b, st.geo.Capacity)
	}
	v := st.next
	st.next++
	page := st.geo.Page
	borrows := make(map[extent.Extent]uint64)
	for _, r := range st.geo.Borrows(e) {
		// Geometry ranges are page-aligned, so page granularity is
		// exact here.
		if w := st.vmap.query(r.Offset/page, r.End()/page); w != 0 {
			borrows[r] = w
		}
	}
	for _, x := range e {
		// Stamp every page the write touches (ends rounded outward).
		st.vmap.stamp(x.Offset/page, (x.End()+page-1)/page, v)
	}
	// Snapshot size is fixed at ticket time: the size after applying
	// writes 1..v in order.
	prev := st.sizes[v-1]
	size := prev
	if end := e.Bounding().End(); end > size {
		size = end
	}
	st.sizes[v] = size
	m.met.ticketTotal.Inc()
	if m.met.publishSec != nil {
		st.assigned[v] = time.Now()
	}
	return Ticket{Version: v, Borrows: borrows}, nil
}

// Complete records that the metadata of version v is fully stored with
// the given root, then publishes every ready version in ticket order.
// With batching enabled, concurrent Complete/Abort callers are
// group-committed: the whole group is applied under one lock
// acquisition and the resulting publications happen with one broadcast.
func (m *Manager) Complete(blob, v uint64, root segtree.NodeKey) error {
	if h := m.met.commitSec; h != nil {
		defer h.ObserveSince(time.Now())
	}
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		_, err := m.commits.do(PublishRequest{Blob: blob, Version: v, Root: root}, cfg)
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.completeLocked(blob, v, root, false)
	if err != nil {
		return err
	}
	if st.publishReady(m) {
		st.cond.Broadcast()
	}
	return nil
}

// completeLocked marks version v completed (or aborted) without
// publishing; the caller decides when to run publishReady so a batch
// of completions publishes with a single broadcast.
func (m *Manager) completeLocked(blob, v uint64, root segtree.NodeKey, abort bool) (*blobState, error) {
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v == 0 || v >= st.next {
		verb := "complete"
		if abort {
			verb = "abort"
		}
		return nil, fmt.Errorf("vmanager: %s of unassigned version %d", verb, v)
	}
	if st.completed[v] {
		return nil, fmt.Errorf("%w: %d", ErrDoubleComplete, v)
	}
	st.completed[v] = true
	if abort {
		st.aborted[v] = true
		m.met.abortTotal.Inc()
	} else {
		st.roots[v] = root
		m.met.commitTotal.Inc()
	}
	return st, nil
}

// Abort gives up a ticket whose write failed after assignment. The
// version publishes as an empty snapshot (identical to its
// predecessor), so later tickets are not blocked behind a dead writer.
// Note the size watermark fixed at assignment time is rolled back for
// the aborted version itself but later snapshots keep the monotone
// watermark — unwritten bytes read as zero holes, as with sparse
// POSIX files.
func (m *Manager) Abort(blob, v uint64) error {
	if cfg := m.Batching(); cfg.MaxBatch > 1 {
		_, err := m.commits.do(PublishRequest{Blob: blob, Version: v, Abort: true}, cfg)
		return err
	}
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, err := m.completeLocked(blob, v, segtree.NodeKey{}, true)
	if err != nil {
		return err
	}
	if st.publishReady(m) {
		st.cond.Broadcast()
	}
	return nil
}

// WaitPublished blocks until version v of the blob is published.
func (m *Manager) WaitPublished(blob, v uint64) error {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v >= st.next {
		return fmt.Errorf("vmanager: waiting for unassigned version %d", v)
	}
	for st.published < v {
		st.cond.Wait()
	}
	return nil
}

// LatestPublished returns the newest published snapshot.
func (m *Manager) LatestPublished(blob uint64) (SnapshotInfo, error) {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	return SnapshotInfo{Version: st.published, Root: st.roots[st.published], Size: st.sizes[st.published]}, nil
}

// Snapshot returns a published snapshot by version.
func (m *Manager) Snapshot(blob, v uint64) (SnapshotInfo, error) {
	m.meter.Charge(0)
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	if v > st.published {
		return SnapshotInfo{}, fmt.Errorf("%w: %d (published %d)", ErrUnknownVersion, v, st.published)
	}
	if st.dropped[v] {
		return SnapshotInfo{}, fmt.Errorf("%w: %d", ErrVersionDropped, v)
	}
	return SnapshotInfo{Version: v, Root: st.roots[v], Size: st.sizes[v]}, nil
}

// Versions returns all retained published versions in order, including
// the empty snapshot 0. Versions dropped by the retention policy are
// excluded — readers, the scrubber and repair all iterate this, so a
// drop removes a version from every consumer at once.
func (m *Manager) Versions(blob uint64) ([]uint64, error) {
	m.mu.Lock()
	defer m.mu.Unlock()
	st, ok := m.blobs[blob]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownBlob, blob)
	}
	out := make([]uint64, 0, st.published+1)
	for v := uint64(0); v <= st.published; v++ {
		if !st.dropped[v] {
			out = append(out, v)
		}
	}
	return out, nil
}

// Blobs returns the IDs of all registered blobs.
func (m *Manager) Blobs() []uint64 {
	m.mu.Lock()
	defer m.mu.Unlock()
	out := make([]uint64, 0, len(m.blobs))
	for id := range m.blobs {
		out = append(out, id)
	}
	return out
}
